/**
 * @file
 * unprotected-store: every store to pre-existing persistent memory
 * must execute with at least one lock held.
 *
 * A FASE is *defined* by its outermost lock scope (paper Sec. II-A);
 * a persistent store outside any lock is outside every FASE, so no
 * logging protocol covers it and a crash can leave it half-applied --
 * and a concurrent FASE can race with it.  Stores to memory freshly
 * allocated inside the FASE are exempt: until the publishing store
 * makes the allocation reachable, no other thread or recovery pass can
 * observe it (the same observation that lets in-cache-line logging
 * skip fresh objects, Cohen et al.).
 */
#include "compiler/lint/lint.h"
#include "compiler/lint/lock_dataflow.h"

namespace ido::compiler::lint {

namespace {

constexpr char kId[] = "unprotected-store";

class UnprotectedStoreCheck final : public LintPass
{
  public:
    const char* id() const override { return kId; }

    const char*
    summary() const override
    {
        return "store to non-fresh persistent memory reachable with an "
               "empty lock set";
    }

    void
    run_function(const LintContext& ctx,
                 std::vector<Diagnostic>& out) const override
    {
        LockDataflow ldf(ctx.fn, ctx.cfg, ctx.aa);
        for (uint32_t b = 0; b < ctx.fn.num_blocks(); ++b) {
            if (!ctx.cfg.reachable(b))
                continue;
            ldf.walk(b, [&](const LockDataflow::State& s, InstrRef ref,
                            const Instr& ins) {
                if (!ins.is_store() || s.holds_any())
                    return;
                const MemRef m = ctx.aa.mem_ref(ins);
                if (m.prov.base == Provenance::Base::kAlloc)
                    return; // fresh allocation: unreachable by others
                out.push_back(make_diag(
                    kId, Severity::kError, ctx.fn.name(), ref,
                    "store to pre-existing persistent memory with no "
                    "lock held: outside any FASE, not crash-atomic"));
            });
        }
    }
};

} // namespace

std::unique_ptr<LintPass>
make_unprotected_store_check()
{
    return std::make_unique<UnprotectedStoreCheck>();
}

} // namespace ido::compiler::lint
