/**
 * @file
 * Flow-sensitive lock-set dataflow over the IR, the shared substrate of
 * the lock-discipline, unprotected-store and cross-FASE race checks.
 *
 * A lock is identified by the provenance of its address operand plus
 * the total byte offset (provenance offset + instruction displacement).
 * For each reachable block the analysis computes, by forward fixpoint
 * iteration over the CFG:
 *
 *   - the MUST set: locks held on *every* path reaching the block
 *     (join = intersection), and
 *   - the MAY set: locks held on *some* path (join = union).
 *
 * Acquires whose address provenance is unknown are tracked as an
 * anonymous "some lock" bit per set; a release with unknown identity
 * conservatively empties the MUST set (we can no longer prove anything
 * is still held) while leaving the MAY set intact.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/alias_analysis.h"
#include "compiler/cfg.h"
#include "compiler/ir.h"

namespace ido::compiler::lint {

/** Identity of a lock word: provenance base + absolute byte offset. */
struct LockId
{
    Provenance::Base base = Provenance::Base::kUnknown;
    uint32_t id = 0;   ///< arg register / allocation site
    int64_t addr = 0;  ///< provenance offset + lock displacement
    bool known = false;

    bool
    operator==(const LockId& o) const
    {
        return known && o.known && base == o.base && id == o.id
               && addr == o.addr;
    }

    bool
    operator<(const LockId& o) const
    {
        if (base != o.base)
            return base < o.base;
        if (id != o.id)
            return id < o.id;
        return addr < o.addr;
    }

    /** "arg0+0", "alloc2+64", "?" */
    std::string to_string() const;
};

/** Identity of the lock word named by a kLock/kUnlock instruction. */
LockId lock_id(const AliasAnalysis& aa, const Instr& ins);

class LockDataflow
{
  public:
    struct State
    {
        std::vector<LockId> must; ///< sorted; held on every path
        std::vector<LockId> may;  ///< sorted; held on some path
        bool must_unknown = false; ///< an anonymous lock surely held
        bool may_unknown = false;  ///< an anonymous lock maybe held
        bool reached = false;

        bool holds_any() const { return !must.empty() || must_unknown; }
    };

    LockDataflow(const Function& fn, const Cfg& cfg,
                 const AliasAnalysis& aa);

    /** Lock-set state at entry of a block. */
    const State& block_in(uint32_t block) const { return in_[block]; }

    /** Single-instruction transfer function. */
    static void apply(State& s, const Instr& ins,
                      const AliasAnalysis& aa);

    /**
     * Replay a block, invoking cb(state_before_instr, ref, instr) for
     * each instruction in order.
     */
    template <typename F>
    void
    walk(uint32_t block, F&& cb) const
    {
        State s = in_[block];
        const BasicBlock& bb = fn_.block(block);
        for (uint32_t i = 0;
             i < static_cast<uint32_t>(bb.instrs.size()); ++i) {
            cb(static_cast<const State&>(s), InstrRef{block, i},
               bb.instrs[i]);
            apply(s, bb.instrs[i], aa_);
        }
    }

  private:
    const Function& fn_;
    const AliasAnalysis& aa_;
    std::vector<State> in_;
};

} // namespace ido::compiler::lint
