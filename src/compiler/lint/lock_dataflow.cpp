#include "compiler/lint/lock_dataflow.h"

#include <algorithm>
#include <cstdio>

namespace ido::compiler::lint {

namespace {

void
insert_sorted(std::vector<LockId>& set, const LockId& l)
{
    auto it = std::lower_bound(set.begin(), set.end(), l);
    if (it != set.end() && *it == l)
        return;
    set.insert(it, l);
}

void
erase_matching(std::vector<LockId>& set, const LockId& l)
{
    set.erase(std::remove(set.begin(), set.end(), l), set.end());
}

bool
contains(const std::vector<LockId>& set, const LockId& l)
{
    return std::find(set.begin(), set.end(), l) != set.end();
}

/** Merge a predecessor's out-state into a block's in-state. */
void
merge_into(LockDataflow::State& dst, const LockDataflow::State& src)
{
    if (!dst.reached) {
        dst = src;
        dst.reached = true;
        return;
    }
    // MUST: intersection.
    std::vector<LockId> kept;
    for (const LockId& l : dst.must) {
        if (contains(src.must, l))
            kept.push_back(l);
    }
    dst.must = std::move(kept);
    dst.must_unknown = dst.must_unknown && src.must_unknown;
    // MAY: union.
    for (const LockId& l : src.may)
        insert_sorted(dst.may, l);
    dst.may_unknown = dst.may_unknown || src.may_unknown;
}

bool
same_state(const LockDataflow::State& a, const LockDataflow::State& b)
{
    return a.reached == b.reached && a.must == b.must && a.may == b.may
           && a.must_unknown == b.must_unknown
           && a.may_unknown == b.may_unknown;
}

} // namespace

std::string
LockId::to_string() const
{
    if (!known)
        return "?";
    char buf[48];
    const char* kind = "?";
    switch (base) {
      case Provenance::Base::kArg:
        kind = "arg";
        break;
      case Provenance::Base::kAlloc:
        kind = "alloc";
        break;
      case Provenance::Base::kAbsolute:
        kind = "abs";
        break;
      case Provenance::Base::kUnknown:
        kind = "?";
        break;
    }
    std::snprintf(buf, sizeof(buf), "%s%u+%lld", kind, id,
                  static_cast<long long>(addr));
    return buf;
}

LockId
lock_id(const AliasAnalysis& aa, const Instr& ins)
{
    LockId l;
    const Provenance& p = aa.provenance(ins.a);
    if (p.base == Provenance::Base::kUnknown || !p.offset_known)
        return l; // unknown identity
    l.base = p.base;
    l.id = p.id;
    l.addr = p.offset + static_cast<int64_t>(ins.imm);
    l.known = true;
    return l;
}

void
LockDataflow::apply(State& s, const Instr& ins, const AliasAnalysis& aa)
{
    if (ins.op == Opcode::kLock) {
        const LockId l = lock_id(aa, ins);
        if (l.known) {
            insert_sorted(s.must, l);
            insert_sorted(s.may, l);
        } else {
            s.must_unknown = true;
            s.may_unknown = true;
        }
    } else if (ins.op == Opcode::kUnlock) {
        const LockId l = lock_id(aa, ins);
        if (l.known) {
            erase_matching(s.must, l);
            erase_matching(s.may, l);
        } else {
            // Could have released any held lock: nothing is surely
            // held any more, anything may still be held.
            s.must.clear();
            s.must_unknown = false;
            s.may_unknown = false;
        }
    }
}

LockDataflow::LockDataflow(const Function& fn, const Cfg& cfg,
                           const AliasAnalysis& aa)
    : fn_(fn), aa_(aa)
{
    in_.assign(fn.num_blocks(), State{});
    in_[0].reached = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : cfg.rpo()) {
            State in;
            in.reached = b == 0;
            for (uint32_t p : cfg.predecessors(b)) {
                if (!cfg.reachable(p))
                    continue;
                State out = in_[p];
                if (!out.reached)
                    continue;
                for (const Instr& ins : fn.block(p).instrs)
                    apply(out, ins, aa);
                merge_into(in, out);
            }
            if (b == 0)
                in.reached = true;
            if (!same_state(in, in_[b])) {
                in_[b] = in;
                changed = true;
            }
        }
    }
}

} // namespace ido::compiler::lint
