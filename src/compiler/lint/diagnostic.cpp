#include "compiler/lint/diagnostic.h"

#include <cstdarg>
#include <cstdio>

#include "common/json.h"

namespace ido::compiler::lint {

const char*
severity_name(Severity s)
{
    switch (s) {
      case Severity::kNote:
        return "note";
      case Severity::kWarning:
        return "warning";
      case Severity::kError:
        return "error";
    }
    return "?";
}

std::string
Diagnostic::render() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s[%s] %s @ bb%u:%u: %s",
                  severity_name(severity), check.c_str(), fase.c_str(),
                  loc.block, loc.index, message.c_str());
    std::string s = buf;
    for (const TraceStep& step : trace) {
        std::snprintf(buf, sizeof(buf), "\n    bb%u:%u  %s",
                      step.loc.block, step.loc.index,
                      step.note.c_str());
        s += buf;
    }
    return s;
}

std::string
Diagnostic::render_json() const
{
    char buf[64];
    std::string s = "{\"check\":\"" + json_escape(check)
                    + "\",\"severity\":\"" + severity_name(severity)
                    + "\",\"fase\":\"" + json_escape(fase) + "\"";
    if (region == kNoRegion) {
        s += ",\"region\":null";
    } else {
        std::snprintf(buf, sizeof(buf), ",\"region\":%u", region);
        s += buf;
    }
    std::snprintf(buf, sizeof(buf), ",\"block\":%u,\"instr\":%u",
                  loc.block, loc.index);
    s += buf;
    s += ",\"message\":\"" + json_escape(message) + "\"";
    if (!trace.empty()) {
        s += ",\"trace\":[";
        for (size_t i = 0; i < trace.size(); ++i) {
            std::snprintf(buf, sizeof(buf),
                          "%s{\"block\":%u,\"instr\":%u,\"note\":\"",
                          i ? "," : "", trace[i].loc.block,
                          trace[i].loc.index);
            s += buf;
            s += json_escape(trace[i].note) + "\"}";
        }
        s += "]";
    }
    s += "}";
    return s;
}

Diagnostic
make_diag(const char* check, Severity severity, const std::string& fase,
          InstrRef loc, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return make_diag(check, severity, fase, loc, std::string(buf));
}

Diagnostic
make_diag(const char* check, Severity severity, const std::string& fase,
          InstrRef loc, std::string message)
{
    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.fase = fase;
    d.loc = loc;
    d.message = std::move(message);
    return d;
}

uint32_t
count_at_least(const std::vector<Diagnostic>& diags, Severity floor)
{
    uint32_t n = 0;
    for (const Diagnostic& d : diags) {
        if (d.severity >= floor)
            ++n;
    }
    return n;
}

void
dedupe_diagnostics(std::vector<Diagnostic>& diags)
{
    std::vector<Diagnostic> kept;
    kept.reserve(diags.size());
    for (Diagnostic& d : diags) {
        bool dup = false;
        for (const Diagnostic& k : kept) {
            if (k.check == d.check && k.severity == d.severity
                && k.fase == d.fase && k.loc == d.loc
                && k.message == d.message) {
                dup = true;
                break;
            }
        }
        if (!dup)
            kept.push_back(std::move(d));
    }
    diags = std::move(kept);
}

} // namespace ido::compiler::lint
