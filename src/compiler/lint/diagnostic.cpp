#include "compiler/lint/diagnostic.h"

#include <cstdarg>
#include <cstdio>

#include "common/json.h"

namespace ido::compiler::lint {

const char*
severity_name(Severity s)
{
    switch (s) {
      case Severity::kNote:
        return "note";
      case Severity::kWarning:
        return "warning";
      case Severity::kError:
        return "error";
    }
    return "?";
}

std::string
Diagnostic::render() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s[%s] %s @ bb%u:%u: %s",
                  severity_name(severity), check.c_str(), fase.c_str(),
                  loc.block, loc.index, message.c_str());
    return buf;
}

std::string
Diagnostic::render_json() const
{
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "{\"check\":\"%s\",\"severity\":\"%s\","
                  "\"fase\":\"%s\",\"block\":%u,\"instr\":%u,"
                  "\"message\":\"%s\"}",
                  json_escape(check).c_str(), severity_name(severity),
                  json_escape(fase).c_str(), loc.block, loc.index,
                  json_escape(message).c_str());
    return buf;
}

Diagnostic
make_diag(const char* check, Severity severity, const std::string& fase,
          InstrRef loc, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);

    Diagnostic d;
    d.check = check;
    d.severity = severity;
    d.fase = fase;
    d.loc = loc;
    d.message = buf;
    return d;
}

uint32_t
count_at_least(const std::vector<Diagnostic>& diags, Severity floor)
{
    uint32_t n = 0;
    for (const Diagnostic& d : diags) {
        if (d.severity >= floor)
            ++n;
    }
    return n;
}

} // namespace ido::compiler::lint
