/**
 * @file
 * ido-lint: a static crash-consistency and lock-discipline analyzer
 * over the FASE IR.
 *
 * The compiler pipeline proves one invariant (region idempotence,
 * idempotence_verifier); the lint layer proves the rest of what a FASE
 * must satisfy to be crash-consistent and race-free at runtime.  Every
 * check is a LintPass over the existing analysis substrate (Cfg,
 * Liveness, AliasAnalysis, RegionPartition, RegionInfo) and reports
 * Diagnostics; a registry runs them all over one function or over a
 * corpus of FASEs (the cross-FASE race check needs the whole set).
 *
 * Built-in checks:
 *   lock-discipline   unlock-without-acquire, double-acquire, leaks
 *   unprotected-store store to pre-existing NVM with no lock held
 *   nv-lifetime       use-after-free / double-free of NV allocations
 *   cross-fase-race   may-aliasing accesses guarded by disjoint locks
 *   region-pressure   regions whose live sets overflow the log ABI
 *   dead-boundary     cuts that neither separate an antidependence
 *                     pair nor follow a mandatory placement rule
 *   persist-ordering  cache-line persist-state dataflow: validates the
 *                     flush-elision plan (missing-persist,
 *                     fence-without-flush, unsound-deferral)
 */
#pragma once

#include <memory>
#include <vector>

#include "compiler/alias_analysis.h"
#include "compiler/cfg.h"
#include "compiler/dataflow.h"
#include "compiler/lint/diagnostic.h"
#include "compiler/region_info.h"
#include "compiler/region_partition.h"

namespace ido::compiler::lint {

/** Borrowed views of one function's analysis pipeline. */
struct LintContext
{
    const Function& fn;
    const Cfg& cfg;
    const AliasAnalysis& aa;
    const Liveness& live;
    const RegionPartition& part;
    const std::vector<RegionInfo>& info;
};

class LintPass
{
  public:
    enum class Scope : uint8_t
    {
        kFunction, ///< runs on each FASE independently
        kCorpus,   ///< runs once over the whole FASE set
    };

    virtual ~LintPass() = default;

    virtual const char* id() const = 0;
    virtual const char* summary() const = 0;
    virtual Scope scope() const { return Scope::kFunction; }

    virtual void
    run_function(const LintContext& ctx,
                 std::vector<Diagnostic>& out) const
    {
        (void)ctx;
        (void)out;
    }

    virtual void
    run_corpus(const std::vector<const LintContext*>& ctxs,
               std::vector<Diagnostic>& out) const
    {
        (void)ctxs;
        (void)out;
    }
};

class LintRegistry
{
  public:
    /** The registry holding all seven built-in checks. */
    static const LintRegistry& builtin();

    void add(std::unique_ptr<LintPass> pass);

    const std::vector<std::unique_ptr<LintPass>>& passes() const
    {
        return passes_;
    }

    /** Run all function-scope passes over one FASE. */
    std::vector<Diagnostic> lint_function(const LintContext& ctx) const;

    /**
     * Run function-scope passes on each FASE plus corpus-scope passes
     * over the whole set.
     */
    std::vector<Diagnostic>
    lint_corpus(const std::vector<const LintContext*>& ctxs) const;

  private:
    std::vector<std::unique_ptr<LintPass>> passes_;
};

/**
 * Owns the full analysis pipeline for one function so callers (tests,
 * the CLI driver) can lint IR without going through CompiledFase.
 * Optional forced cuts are injected into the partitioner (used to
 * exercise the dead-boundary check and for region-size experiments).
 */
struct LintUnit
{
    explicit LintUnit(Function f, std::vector<InstrRef> forced_cuts = {});

    LintContext ctx() const { return {fn, cfg, aa, live, part, info}; }

    Function fn;
    Cfg cfg;
    AliasAnalysis aa;
    Liveness live;
    RegionPartition part;
    std::vector<RegionInfo> info;
};

// Built-in check factories (registered by LintRegistry::builtin()).
std::unique_ptr<LintPass> make_lock_discipline_check();
std::unique_ptr<LintPass> make_unprotected_store_check();
std::unique_ptr<LintPass> make_nv_lifetime_check();
std::unique_ptr<LintPass> make_cross_fase_race_check();
std::unique_ptr<LintPass> make_region_pressure_check();
std::unique_ptr<LintPass> make_dead_boundary_check();
std::unique_ptr<LintPass> make_persist_ordering_check();

} // namespace ido::compiler::lint
