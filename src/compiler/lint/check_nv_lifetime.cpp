/**
 * @file
 * nv-lifetime: provenance-based use-after-free and double-free of NV
 * allocations.
 *
 * The runtime defers kFree to FASE end for crash atomicity, which
 * masks same-FASE use-after-free at runtime -- precisely why it must
 * be caught statically: the bug survives testing and detonates once
 * the allocator is reused across FASEs.  The check tracks frees whose
 * operand has a known provenance (allocation site or FASE argument)
 * and flags any later-reachable access or free of the same base.
 *
 * The check mirrors NvHeap's two-phase free protocol: kFree moves a
 * block kBlockLive -> kBlockFreeing (durably marked, parked in the
 * freeing thread's transient cache), and only a later batched spill
 * finalizes it to kBlockFree on a global list.  A second free or an
 * access in either phase is a bug; the allocator's state validation
 * panics on the non-LIVE header at run time, but only on the executed
 * path -- the lint is the compile-time counterpart that covers every
 * path.  Blocks another thread could have recycled (already
 * kBlockLive again under a new owner tag) are indistinguishable from
 * live data at run time, which is why the use-after-free arm can only
 * exist here.
 *
 * Conservatism note: all allocations from one site share a provenance,
 * so a loop that frees and reallocates through the same site can be
 * flagged spuriously; none of the corpus FASEs do this.
 */
#include "compiler/lint/lint.h"

namespace ido::compiler::lint {

namespace {

constexpr char kId[] = "nv-lifetime";

/** Strictly-after execution order (same-block forward, or CFG path). */
bool
executes_after(const Cfg& cfg, InstrRef p, InstrRef q)
{
    if (p.block == q.block && q.index > p.index)
        return true;
    for (uint32_t s : cfg.successors(p.block)) {
        if (cfg.reaches(s, q.block))
            return true;
    }
    return false;
}

class NvLifetimeCheck final : public LintPass
{
  public:
    const char* id() const override { return kId; }

    const char*
    summary() const override
    {
        return "use-after-free and double-free of NV allocations via "
               "provenance tracking";
    }

    void
    run_function(const LintContext& ctx,
                 std::vector<Diagnostic>& out) const override
    {
        struct Site
        {
            InstrRef ref;
            Provenance prov;
            const Instr* ins;
        };
        std::vector<Site> frees, accesses;
        for (uint32_t b = 0; b < ctx.fn.num_blocks(); ++b) {
            if (!ctx.cfg.reachable(b))
                continue;
            const BasicBlock& bb = ctx.fn.block(b);
            for (uint32_t i = 0;
                 i < static_cast<uint32_t>(bb.instrs.size()); ++i) {
                const Instr& ins = bb.instrs[i];
                if (ins.op == Opcode::kFree) {
                    frees.push_back({InstrRef{b, i},
                                     ctx.aa.provenance(ins.a), &ins});
                } else if (ins.is_load() || ins.is_store()) {
                    accesses.push_back({InstrRef{b, i},
                                        ctx.aa.provenance(ins.a),
                                        &ins});
                }
            }
        }

        for (const Site& f : frees) {
            // Unknown provenance (e.g. a pointer loaded from memory)
            // cannot be matched against later accesses; skip.
            if (f.prov.base == Provenance::Base::kUnknown)
                continue;
            for (const Site& g : frees) {
                if (g.ref == f.ref || !f.prov.same_base(g.prov))
                    continue;
                if (executes_after(ctx.cfg, f.ref, g.ref)) {
                    out.push_back(make_diag(
                        kId, Severity::kError, ctx.fn.name(), g.ref,
                        "double free: allocation already freed at "
                        "bb%u:%u (block is kBlockFreeing/kBlockFree "
                        "there; the runtime panics on the non-LIVE "
                        "header only if this path executes)",
                        f.ref.block, f.ref.index));
                }
            }
            for (const Site& a : accesses) {
                if (!f.prov.same_base(a.prov))
                    continue;
                if (executes_after(ctx.cfg, f.ref, a.ref)) {
                    out.push_back(make_diag(
                        kId, Severity::kError, ctx.fn.name(), a.ref,
                        "%s of memory freed at bb%u:%u "
                        "(use-after-free; once the block is respilled "
                        "and recycled it is kBlockLive under another "
                        "owner, invisible to the runtime's state "
                        "check)",
                        a.ins->is_store() ? "store" : "load",
                        f.ref.block, f.ref.index));
                }
            }
        }
    }
};

} // namespace

std::unique_ptr<LintPass>
make_nv_lifetime_check()
{
    return std::make_unique<NvLifetimeCheck>();
}

} // namespace ido::compiler::lint
