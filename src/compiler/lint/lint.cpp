#include "compiler/lint/lint.h"

namespace ido::compiler::lint {

namespace {

RegionPartition
run_partitioner(const Function& fn, const Cfg& cfg,
                const AliasAnalysis& aa,
                const std::vector<InstrRef>& forced)
{
    RegionPartitioner p(fn, cfg, aa);
    for (const InstrRef& cut : forced)
        p.force_cut(cut);
    return p.run();
}

} // namespace

LintUnit::LintUnit(Function f, std::vector<InstrRef> forced_cuts)
    : fn(std::move(f)), cfg(fn), aa(fn), live(fn, cfg),
      part(run_partitioner(fn, cfg, aa, forced_cuts)),
      info(compute_region_info(fn, cfg, live, part))
{
}

void
LintRegistry::add(std::unique_ptr<LintPass> pass)
{
    passes_.push_back(std::move(pass));
}

const LintRegistry&
LintRegistry::builtin()
{
    static const LintRegistry* reg = [] {
        auto* r = new LintRegistry();
        r->add(make_lock_discipline_check());
        r->add(make_unprotected_store_check());
        r->add(make_nv_lifetime_check());
        r->add(make_cross_fase_race_check());
        r->add(make_region_pressure_check());
        r->add(make_dead_boundary_check());
        return r;
    }();
    return *reg;
}

std::vector<Diagnostic>
LintRegistry::lint_function(const LintContext& ctx) const
{
    std::vector<Diagnostic> out;
    for (const auto& pass : passes_) {
        if (pass->scope() == LintPass::Scope::kFunction)
            pass->run_function(ctx, out);
    }
    return out;
}

std::vector<Diagnostic>
LintRegistry::lint_corpus(
    const std::vector<const LintContext*>& ctxs) const
{
    std::vector<Diagnostic> out;
    for (const LintContext* ctx : ctxs) {
        for (const auto& pass : passes_) {
            if (pass->scope() == LintPass::Scope::kFunction)
                pass->run_function(*ctx, out);
        }
    }
    for (const auto& pass : passes_) {
        if (pass->scope() == LintPass::Scope::kCorpus)
            pass->run_corpus(ctxs, out);
    }
    return out;
}

} // namespace ido::compiler::lint
