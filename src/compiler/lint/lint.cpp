#include "compiler/lint/lint.h"

namespace ido::compiler::lint {

namespace {

RegionPartition
run_partitioner(const Function& fn, const Cfg& cfg,
                const AliasAnalysis& aa,
                const std::vector<InstrRef>& forced)
{
    RegionPartitioner p(fn, cfg, aa);
    for (const InstrRef& cut : forced)
        p.force_cut(cut);
    return p.run();
}

/**
 * Annotate diagnostics [from, end) with the region index of their
 * anchor position, resolved against the FASE's own partition.  Checks
 * stay location-agnostic; the driver fills in what only it knows.
 */
void
annotate_regions(const LintContext& ctx, std::vector<Diagnostic>& out,
                 size_t from)
{
    for (size_t i = from; i < out.size(); ++i) {
        Diagnostic& d = out[i];
        if (d.region != Diagnostic::kNoRegion
            || d.fase != ctx.fn.name())
            continue;
        if (d.loc.block >= ctx.fn.num_blocks()
            || d.loc.index >= ctx.fn.block(d.loc.block).instrs.size())
            continue;
        d.region = ctx.part.region_of(d.loc);
    }
}

} // namespace

LintUnit::LintUnit(Function f, std::vector<InstrRef> forced_cuts)
    : fn(std::move(f)), cfg(fn), aa(fn), live(fn, cfg),
      part(run_partitioner(fn, cfg, aa, forced_cuts)),
      info(compute_region_info(fn, cfg, live, part))
{
}

void
LintRegistry::add(std::unique_ptr<LintPass> pass)
{
    passes_.push_back(std::move(pass));
}

const LintRegistry&
LintRegistry::builtin()
{
    static const LintRegistry* reg = [] {
        auto* r = new LintRegistry();
        r->add(make_lock_discipline_check());
        r->add(make_unprotected_store_check());
        r->add(make_nv_lifetime_check());
        r->add(make_cross_fase_race_check());
        r->add(make_region_pressure_check());
        r->add(make_dead_boundary_check());
        r->add(make_persist_ordering_check());
        return r;
    }();
    return *reg;
}

std::vector<Diagnostic>
LintRegistry::lint_function(const LintContext& ctx) const
{
    std::vector<Diagnostic> out;
    for (const auto& pass : passes_) {
        if (pass->scope() == LintPass::Scope::kFunction)
            pass->run_function(ctx, out);
    }
    annotate_regions(ctx, out, 0);
    dedupe_diagnostics(out);
    return out;
}

std::vector<Diagnostic>
LintRegistry::lint_corpus(
    const std::vector<const LintContext*>& ctxs) const
{
    std::vector<Diagnostic> out;
    for (const LintContext* ctx : ctxs) {
        const size_t from = out.size();
        for (const auto& pass : passes_) {
            if (pass->scope() == LintPass::Scope::kFunction)
                pass->run_function(*ctx, out);
        }
        annotate_regions(*ctx, out, from);
    }
    const size_t corpus_from = out.size();
    for (const auto& pass : passes_) {
        if (pass->scope() == LintPass::Scope::kCorpus)
            pass->run_corpus(ctxs, out);
    }
    // Corpus-scope findings may anchor to any FASE in the set.
    for (const LintContext* ctx : ctxs)
        annotate_regions(*ctx, out, corpus_from);
    dedupe_diagnostics(out);
    return out;
}

} // namespace ido::compiler::lint
