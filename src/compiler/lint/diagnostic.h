/**
 * @file
 * The diagnostic currency of ido-lint.
 *
 * Every lint check reports its findings as Diagnostic values: a stable
 * check id (kebab-case, e.g. "lock-discipline"), a severity, the FASE
 * and instruction position the finding anchors to, and a human-readable
 * message.  Severity semantics follow the compiler driver convention:
 * errors are findings the analysis *proves* (strict mode refuses to
 * compile the FASE), warnings are conservative may-happen findings,
 * notes are informational.
 */
#pragma once

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace ido::compiler::lint {

enum class Severity : uint8_t
{
    kNote,
    kWarning,
    kError,
};

const char* severity_name(Severity s);

struct Diagnostic
{
    std::string check;   ///< stable check id, e.g. "lock-discipline"
    Severity severity = Severity::kWarning;
    std::string fase;    ///< function (FASE) name
    InstrRef loc;        ///< anchoring instruction position
    std::string message; ///< human-readable finding

    /** "error[lock-discipline] ir.stack.push @ bb0:3: ..." */
    std::string render() const;

    /** One JSON object: {"check":...,"severity":...,"fase":...,
     *  "block":N,"instr":N,"message":...} */
    std::string render_json() const;
};

/** printf-style constructor for check implementations. */
Diagnostic make_diag(const char* check, Severity severity,
                     const std::string& fase, InstrRef loc,
                     const char* fmt, ...)
    __attribute__((format(printf, 5, 6)));

/** Count diagnostics at or above a severity. */
uint32_t count_at_least(const std::vector<Diagnostic>& diags,
                        Severity floor);

} // namespace ido::compiler::lint
