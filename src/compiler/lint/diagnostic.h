/**
 * @file
 * The diagnostic currency of ido-lint.
 *
 * Every lint check reports its findings as Diagnostic values: a stable
 * check id (kebab-case, e.g. "lock-discipline"), a severity, the FASE
 * and instruction position the finding anchors to, and a human-readable
 * message.  Severity semantics follow the compiler driver convention:
 * errors are findings the analysis *proves* (strict mode refuses to
 * compile the FASE), warnings are conservative may-happen findings,
 * notes are informational.
 *
 * Machine-readable location: every diagnostic carries (fase, region,
 * block, instr).  The region index is annotated centrally by the lint
 * driver from the RegionPartition (kNoRegion when the position does
 * not name an instruction).  Checks that prove a finding by exhibiting
 * an execution path attach it as a trace of (position, note) steps --
 * for persist-ordering findings this is the crash-frontier
 * counterexample: the path along which a crash observes the bug.
 *
 * JSON schema (one object per diagnostic, stable field order):
 *
 *   {"check":   string,   stable check id
 *    "severity":string,   "note" | "warning" | "error"
 *    "fase":    string,   function name
 *    "region":  number|null,  region index, null = no instruction
 *    "block":   number,   basic block of the anchor
 *    "instr":   number,   instruction index within the block
 *    "message": string,
 *    "trace":   [{"block":number,"instr":number,"note":string}, ...]}
 *
 * "trace" is present only when non-empty.
 */
#pragma once

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace ido::compiler::lint {

enum class Severity : uint8_t
{
    kNote,
    kWarning,
    kError,
};

const char* severity_name(Severity s);

/** One step of a counterexample path attached to a diagnostic. */
struct TraceStep
{
    InstrRef loc;
    std::string note; ///< what happens at this step
};

struct Diagnostic
{
    /** `region` value when the anchor names no instruction. */
    static constexpr uint32_t kNoRegion = 0xffffffffu;

    std::string check;   ///< stable check id, e.g. "lock-discipline"
    Severity severity = Severity::kWarning;
    std::string fase;    ///< function (FASE) name
    uint32_t region = kNoRegion; ///< annotated by the lint driver
    InstrRef loc;        ///< anchoring instruction position
    std::string message; ///< human-readable finding
    std::vector<TraceStep> trace; ///< counterexample path (may be empty)

    /** "error[lock-discipline] ir.stack.push @ bb0:3: ..." plus one
     *  indented line per trace step. */
    std::string render() const;

    /** One JSON object following the schema in the file comment. */
    std::string render_json() const;
};

/** printf-style constructor for check implementations. */
Diagnostic make_diag(const char* check, Severity severity,
                     const std::string& fase, InstrRef loc,
                     const char* fmt, ...)
    __attribute__((format(printf, 5, 6)));

/** Prebuilt-message constructor (for messages beyond printf's reach). */
Diagnostic make_diag(const char* check, Severity severity,
                     const std::string& fase, InstrRef loc,
                     std::string message);

/** Count diagnostics at or above a severity. */
uint32_t count_at_least(const std::vector<Diagnostic>& diags,
                        Severity floor);

/**
 * Drop diagnostics identical in (check, severity, fase, loc, message),
 * keeping the first of each group (and with it, its trace).  Checks
 * that walk one op once per path through it would otherwise report
 * the same finding once per path.  Order is preserved.
 */
void dedupe_diagnostics(std::vector<Diagnostic>& diags);

} // namespace ido::compiler::lint
