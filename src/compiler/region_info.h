/**
 * @file
 * Per-region dataflow summaries: the inputs the runtime must preserve
 * and the OutputSet the boundary protocol persists,
 *
 *     OutputSet_r = Def_r ∩ LiveOut_r            (paper Eq. 1)
 *
 * plus static store counts and lock-op flags used for statistics and
 * verification.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/cfg.h"
#include "compiler/dataflow.h"
#include "compiler/region_partition.h"

namespace ido::compiler {

struct RegionInfo
{
    InstrRef start;
    uint64_t live_in = 0;  ///< inputs: live at entry and used in region
    uint64_t defs = 0;     ///< registers defined in the region
    uint64_t outputs = 0;  ///< Def ∩ LiveOut (Eq. 1)
    uint32_t num_stores = 0;
    uint32_t num_loads = 0;
    uint32_t num_instrs = 0;
    bool has_lock = false;
    bool has_unlock = false;
    bool has_alloc = false;
};

std::vector<RegionInfo>
compute_region_info(const Function& fn, const Cfg& cfg,
                    const Liveness& live, const RegionPartition& part);

} // namespace ido::compiler
