#include "compiler/cfg.h"

#include <algorithm>

#include "common/panic.h"

namespace ido::compiler {

Cfg::Cfg(const Function& fn)
    : fn_(fn)
{
    const uint32_t n = fn.num_blocks();
    succs_.resize(n);
    preds_.resize(n);
    loop_header_.assign(n, false);
    reachable_.assign(n, false);
    rpo_index_.assign(n, 0);
    idom_.assign(n, 0);

    for (uint32_t b = 0; b < n; ++b) {
        const Instr& t = fn.block(b).terminator();
        switch (t.op) {
          case Opcode::kBr:
            succs_[b].push_back(static_cast<uint32_t>(t.imm));
            break;
          case Opcode::kCondBr:
            succs_[b].push_back(static_cast<uint32_t>(t.imm));
            if (t.target2 != t.imm)
                succs_[b].push_back(t.target2);
            break;
          case Opcode::kRet:
            break;
          default:
            panic("block %u lacks a terminator", b);
        }
    }
    for (uint32_t b = 0; b < n; ++b) {
        for (uint32_t s : succs_[b])
            preds_[s].push_back(b);
    }

    compute_rpo();
    compute_dominators();

    // Back edge: pred -> header where header dominates pred.
    for (uint32_t b = 0; b < n; ++b) {
        if (!reachable_[b])
            continue;
        for (uint32_t s : succs_[b]) {
            if (dominates(s, b))
                loop_header_[s] = true;
        }
    }
}

void
Cfg::compute_rpo()
{
    std::vector<uint32_t> postorder;
    std::vector<uint8_t> state(fn_.num_blocks(), 0);
    // Iterative DFS from the entry block.
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    reachable_[0] = true;
    while (!stack.empty()) {
        auto& [b, next] = stack.back();
        if (next < succs_[b].size()) {
            const uint32_t s = succs_[b][next++];
            if (state[s] == 0) {
                state[s] = 1;
                reachable_[s] = true;
                stack.emplace_back(s, 0);
            }
        } else {
            postorder.push_back(b);
            state[b] = 2;
            stack.pop_back();
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (uint32_t i = 0; i < rpo_.size(); ++i)
        rpo_index_[rpo_[i]] = i;
}

void
Cfg::compute_dominators()
{
    // Cooper-Harvey-Kennedy iterative dominators over RPO.
    const uint32_t undef = 0xffffffffu;
    std::vector<uint32_t> doms(fn_.num_blocks(), undef);
    doms[0] = 0;
    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpo_index_[a] > rpo_index_[b])
                a = doms[a];
            while (rpo_index_[b] > rpo_index_[a])
                b = doms[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo_) {
            if (b == 0)
                continue;
            uint32_t new_idom = undef;
            for (uint32_t p : preds_[b]) {
                if (!reachable_[p] || doms[p] == undef)
                    continue;
                new_idom = (new_idom == undef)
                    ? p
                    : intersect(p, new_idom);
            }
            if (new_idom != undef && doms[b] != new_idom) {
                doms[b] = new_idom;
                changed = true;
            }
        }
    }
    for (uint32_t b = 0; b < fn_.num_blocks(); ++b)
        idom_[b] = (doms[b] == undef) ? 0 : doms[b];
}

bool
Cfg::dominates(uint32_t a, uint32_t b) const
{
    if (!reachable_[a] || !reachable_[b])
        return false;
    uint32_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == 0)
            return a == 0;
        cur = idom_[cur];
    }
}

bool
Cfg::reaches(uint32_t from, uint32_t to) const
{
    if (!reachable_[from] || !reachable_[to])
        return false;
    std::vector<bool> seen(fn_.num_blocks(), false);
    std::vector<uint32_t> work{from};
    seen[from] = true;
    while (!work.empty()) {
        const uint32_t b = work.back();
        work.pop_back();
        if (b == to)
            return true;
        for (uint32_t s : succs_[b]) {
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    return false;
}

} // namespace ido::compiler
