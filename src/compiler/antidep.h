/**
 * @file
 * Antidependence detection (paper Sec. II-C / IV-A-b).
 *
 * A region is idempotent iff re-running it from its entry cannot
 * observe its own writes -- i.e. no write-after-read on either memory
 * (a store may-aliasing an earlier load) or registers (a definition
 * clobbering an earlier use that is live at region entry).  The
 * partitioner must place a cut between the two halves of every pair.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/alias_analysis.h"
#include "compiler/cfg.h"
#include "compiler/ir.h"

namespace ido::compiler {

struct AntidepPair
{
    InstrRef first;  ///< the read (load, or register use)
    InstrRef second; ///< the clobber (store, or register def)
    bool is_memory;  ///< memory antidep vs. register antidep
    uint32_t reg;    ///< for register pairs: the clobbered register
};

/**
 * All write-after-read pairs where the clobber is reachable from the
 * read (same-block later index, or any CFG path including loops).
 */
std::vector<AntidepPair>
find_antidependences(const Function& fn, const Cfg& cfg,
                     const AliasAnalysis& aa);

} // namespace ido::compiler
