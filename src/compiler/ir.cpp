#include "compiler/ir.h"

#include <cstdio>

#include "common/panic.h"

namespace ido::compiler {

bool
is_terminator(Opcode op)
{
    return op == Opcode::kBr || op == Opcode::kCondBr
           || op == Opcode::kRet;
}

uint64_t
Instr::uses() const
{
    uint64_t mask = 0;
    if (a != kNoReg)
        mask |= 1ull << a;
    if (b != kNoReg)
        mask |= 1ull << b;
    return mask;
}

uint32_t
Function::new_block(std::string name)
{
    blocks_.push_back(BasicBlock{{}, std::move(name)});
    return static_cast<uint32_t>(blocks_.size() - 1);
}

uint32_t
Function::new_reg()
{
    IDO_ASSERT(num_regs_ < kMaxRegs, "IR register budget exceeded");
    return num_regs_++;
}

void
Function::add_arg(uint32_t reg)
{
    IDO_ASSERT(reg < num_regs_);
    arg_mask_ |= 1ull << reg;
}

void
Function::emit(uint32_t block, Instr instr)
{
    IDO_ASSERT(block < blocks_.size());
    IDO_ASSERT(blocks_[block].instrs.empty()
                   || !is_terminator(blocks_[block].instrs.back().op),
               "emitting past a terminator in %s",
               blocks_[block].name.c_str());
    blocks_[block].instrs.push_back(instr);
}

void
Function::validate() const
{
    IDO_ASSERT(!blocks_.empty(), "function %s has no blocks",
               name_.c_str());
    for (uint32_t b = 0; b < blocks_.size(); ++b) {
        const BasicBlock& bb = blocks_[b];
        IDO_ASSERT(!bb.instrs.empty(), "empty block %u in %s", b,
                   name_.c_str());
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            const Instr& ins = bb.instrs[i];
            const bool last = (i + 1 == bb.instrs.size());
            IDO_ASSERT(is_terminator(ins.op) == last,
                       "terminator placement in %s block %u instr %u",
                       name_.c_str(), b, i);
            if (ins.dst != kNoReg) {
                IDO_ASSERT(ins.dst < num_regs_);
                // Register discipline mirroring the compiler's
                // live-interval extension (Sec. IV-A-c): a value may
                // not clobber one of its own operands; recovery
                // restores registers from the log, so every distinct
                // value needs its own slot until its last use.
                IDO_ASSERT(!(ins.uses() & (1ull << ins.dst)),
                           "instruction redefines its own operand "
                           "(%s block %u instr %u); use a fresh "
                           "register",
                           name_.c_str(), b, i);
            }
            if (ins.a != kNoReg)
                IDO_ASSERT(ins.a < num_regs_);
            if (ins.b != kNoReg)
                IDO_ASSERT(ins.b < num_regs_);
            if (ins.op == Opcode::kBr) {
                IDO_ASSERT(ins.imm < blocks_.size(),
                           "branch target out of range");
            }
            if (ins.op == Opcode::kCondBr) {
                IDO_ASSERT(ins.imm < blocks_.size()
                               && ins.target2 < blocks_.size(),
                           "condbr target out of range");
            }
        }
    }
}

const char*
opcode_name(Opcode op)
{
    switch (op) {
      case Opcode::kConst:
        return "const";
      case Opcode::kMov:
        return "mov";
      case Opcode::kAdd:
        return "add";
      case Opcode::kSub:
        return "sub";
      case Opcode::kMul:
        return "mul";
      case Opcode::kCmpLt:
        return "cmplt";
      case Opcode::kCmpEq:
        return "cmpeq";
      case Opcode::kLoad:
        return "load";
      case Opcode::kStore:
        return "store";
      case Opcode::kAlloc:
        return "alloc";
      case Opcode::kFree:
        return "free";
      case Opcode::kLock:
        return "lock";
      case Opcode::kUnlock:
        return "unlock";
      case Opcode::kBr:
        return "br";
      case Opcode::kCondBr:
        return "condbr";
      case Opcode::kRet:
        return "ret";
    }
    return "?";
}

std::string
Function::dump() const
{
    std::string out = "function " + name_ + ":\n";
    char buf[160];
    for (uint32_t b = 0; b < blocks_.size(); ++b) {
        out += "  " + blocks_[b].name + " (bb" + std::to_string(b)
               + "):\n";
        for (const Instr& ins : blocks_[b].instrs) {
            std::snprintf(
                buf, sizeof(buf),
                "    %-7s dst=%-3d a=%-3d b=%-3d imm=%llu t2=%u\n",
                opcode_name(ins.op),
                ins.dst == kNoReg ? -1 : static_cast<int>(ins.dst),
                ins.a == kNoReg ? -1 : static_cast<int>(ins.a),
                ins.b == kNoReg ? -1 : static_cast<int>(ins.b),
                (unsigned long long)ins.imm, ins.target2);
            out += buf;
        }
    }
    return out;
}

} // namespace ido::compiler
