#include "compiler/idempotence_verifier.h"

#include <cstdarg>
#include <cstdio>

#include "compiler/antidep.h"

namespace ido::compiler {

namespace {

void
add_violation(VerifyResult& result, const char* fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    result.ok = false;
    result.violations.emplace_back(buf);
}

} // namespace

VerifyResult
verify_idempotence(const Function& fn, const Cfg& cfg,
                   const AliasAnalysis& aa, const RegionPartition& part)
{
    VerifyResult result;

    // 1. Every antidependent pair must straddle a boundary.  For a
    // forward intra-block pair any cut strictly between the read and
    // the clobber works; for a cross-block or loop-carried pair every
    // path re-enters the clobber's block, so a cut anywhere from that
    // block's entry to the clobber covers it (the back-edge case: each
    // loop iteration is a fresh region instance).
    for (const AntidepPair& p :
         find_antidependences(fn, cfg, aa)) {
        if (!p.is_memory)
            continue; // register WAR is safe under log-restore
        bool covered;
        if (p.first.block == p.second.block
            && p.first.index < p.second.index) {
            covered = part.has_cut_in(p.first.block,
                                      p.first.index + 1,
                                      p.second.index);
        } else {
            covered = part.has_cut_in(p.second.block, 0,
                                      p.second.index);
        }
        if (!covered) {
            add_violation(result,
                          "%s antidependence not cut: "
                          "(bb%u,%u) -> (bb%u,%u)",
                          p.is_memory ? "memory" : "register",
                          p.first.block, p.first.index, p.second.block,
                          p.second.index);
        }
    }

    // 2. Lock placement: an acquire ends its region; a release starts
    // one (Sec. III-B).
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock& bb = fn.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            const Opcode op = bb.instrs[i].op;
            uint32_t region;
            if (op == Opcode::kLock && i + 1 < bb.instrs.size()
                && !is_terminator(bb.instrs[i + 1].op)
                && !part.is_region_start(InstrRef{b, i + 1},
                                         &region)) {
                add_violation(result,
                              "no boundary after acquire at "
                              "(bb%u,%u)",
                              b, i);
            }
            if (op == Opcode::kUnlock
                && !part.is_region_start(InstrRef{b, i}, &region)) {
                add_violation(result,
                              "no boundary before release at "
                              "(bb%u,%u)",
                              b, i);
            }
        }
    }

    // 3. Structural single-entry: joins and loop headers are headers.
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        uint32_t region;
        const bool header =
            part.is_region_start(InstrRef{b, 0}, &region);
        if ((cfg.predecessors(b).size() > 1 || cfg.is_loop_header(b))
            && !header) {
            add_violation(result,
                          "block %u (join/loop header) is not a "
                          "region header",
                          b);
        }
    }
    return result;
}

} // namespace ido::compiler
