/**
 * @file
 * End-to-end compilation of an IR FASE body into an executable
 * rt::FaseProgram (the full pipeline of paper Fig. 4):
 *
 *   IR function
 *     -> CFG + liveness + alias analysis
 *     -> idempotent region formation (antidep cuts, hitting set)
 *     -> independent idempotence verification
 *     -> per-region input/output sets (Eq. 1)
 *     -> FaseProgram whose regions execute through the Interpreter.
 *
 * The resulting program runs under *any* runtime in this repo,
 * exactly like the hand-lowered data-structure programs -- which is
 * how the tests cross-check the compiler against the hand lowerings.
 */
#pragma once

#include <memory>

#include "compiler/alias_analysis.h"
#include "compiler/cfg.h"
#include "compiler/dataflow.h"
#include "compiler/idempotence_verifier.h"
#include "compiler/region_info.h"
#include "compiler/region_partition.h"
#include "runtime/fase_program.h"

namespace ido::compiler {

class CompiledFase
{
  public:
    /**
     * Run the pipeline.  Panics if the function fails structural
     * validation, uses more registers than RegionCtx has slots, or
     * the verifier rejects the partition.
     */
    CompiledFase(uint32_t fase_id, Function fn);

    CompiledFase(const CompiledFase&) = delete;
    CompiledFase& operator=(const CompiledFase&) = delete;

    /** Executable program; regions run via the Interpreter. */
    const rt::FaseProgram& program() const { return program_; }

    const Function& function() const { return fn_; }
    const Cfg& cfg() const { return *cfg_; }
    const RegionPartition& partition() const { return partition_; }
    const std::vector<RegionInfo>& region_info() const { return info_; }
    const VerifyResult& verification() const { return verification_; }

  private:
    Function fn_;
    std::unique_ptr<Cfg> cfg_;
    std::unique_ptr<AliasAnalysis> aa_;
    std::unique_ptr<Liveness> liveness_;
    RegionPartition partition_;
    std::vector<RegionInfo> info_;
    VerifyResult verification_;
    rt::FaseProgram program_;
};

} // namespace ido::compiler
