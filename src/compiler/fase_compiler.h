/**
 * @file
 * End-to-end compilation of an IR FASE body into an executable
 * rt::FaseProgram (the full pipeline of paper Fig. 4):
 *
 *   IR function
 *     -> CFG + liveness + alias analysis
 *     -> idempotent region formation (antidep cuts, hitting set)
 *     -> independent idempotence verification
 *     -> per-region input/output sets (Eq. 1)
 *     -> FaseProgram whose regions execute through the Interpreter.
 *
 * The resulting program runs under *any* runtime in this repo,
 * exactly like the hand-lowered data-structure programs -- which is
 * how the tests cross-check the compiler against the hand lowerings.
 */
#pragma once

#include <memory>

#include "compiler/alias_analysis.h"
#include "compiler/cfg.h"
#include "compiler/dataflow.h"
#include "compiler/idempotence_verifier.h"
#include "compiler/lint/lint.h"
#include "compiler/persistency/persist_plan.h"
#include "compiler/region_info.h"
#include "compiler/region_partition.h"
#include "runtime/fase_program.h"

namespace ido::compiler {

/** How CompiledFase treats lint diagnostics. */
enum class LintMode
{
    kOff,    ///< skip the diagnostics stage entirely
    kWarn,   ///< collect and print diagnostics; never reject (default)
    kStrict, ///< -Werror flavour: panic on any error-severity finding
};

class CompiledFase
{
  public:
    /**
     * Run the pipeline.  Panics if the function fails structural
     * validation, uses more registers than RegionCtx has slots, or
     * the verifier rejects the partition.  Under LintMode::kStrict it
     * additionally panics if any lint check reports an error-severity
     * diagnostic (lock leak, unprotected store, use-after-free, ...).
     *
     * The ido-verify stage always runs: a flush-elision PersistPlan is
     * computed and independently re-proved (persist_verify.h), and the
     * build panics if any claim fails -- an unsound plan is a compiler
     * bug, never a warning.  `elide_flushes` controls only whether the
     * interpreter *consumes* the plan (covered stores skip their
     * pending write-back, co-located allocations are line-aligned);
     * off, every store keeps the stock protocol, which is how the
     * benchmarks measure the flush diet.
     */
    CompiledFase(uint32_t fase_id, Function fn,
                 LintMode lint_mode = LintMode::kWarn,
                 bool elide_flushes = true);

    CompiledFase(const CompiledFase&) = delete;
    CompiledFase& operator=(const CompiledFase&) = delete;

    /** Executable program; regions run via the Interpreter. */
    const rt::FaseProgram& program() const { return program_; }

    const Function& function() const { return fn_; }
    const Cfg& cfg() const { return *cfg_; }
    const RegionPartition& partition() const { return partition_; }
    const std::vector<RegionInfo>& region_info() const { return info_; }
    const VerifyResult& verification() const { return verification_; }

    /** The verified flush-elision plan (ido-verify stage). */
    const persistency::PersistPlan& persist_plan() const
    {
        return plan_;
    }

    /** Does the interpreter consume the plan for this program? */
    bool elide_flushes() const { return elide_; }

    /** Diagnostics from the lint stage (empty under LintMode::kOff). */
    const std::vector<lint::Diagnostic>& diagnostics() const
    {
        return diagnostics_;
    }

  private:
    Function fn_;
    std::unique_ptr<Cfg> cfg_;
    std::unique_ptr<AliasAnalysis> aa_;
    std::unique_ptr<Liveness> liveness_;
    RegionPartition partition_;
    std::vector<RegionInfo> info_;
    VerifyResult verification_;
    persistency::PersistPlan plan_;
    bool elide_ = true;
    std::vector<lint::Diagnostic> diagnostics_;
    rt::FaseProgram program_;
};

} // namespace ido::compiler
