/**
 * @file
 * Register dataflow analyses over the IR: liveness (backward) and the
 * per-region input/output machinery the iDO compiler needs --
 * "inputs" are live-in registers used in a region; "outputs" are
 * Def_r ∩ LiveOut_r, the downward-exposed definitions (paper Eq. 1).
 * Register sets are uint64_t bitmasks (kMaxRegs = 64).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/cfg.h"
#include "compiler/ir.h"

namespace ido::compiler {

class Liveness
{
  public:
    Liveness(const Function& fn, const Cfg& cfg);

    /** Registers live at entry of a block. */
    uint64_t live_in(uint32_t block) const { return live_in_[block]; }

    /** Registers live at exit of a block. */
    uint64_t live_out(uint32_t block) const { return live_out_[block]; }

    /**
     * Registers live immediately BEFORE instruction (block, index).
     */
    uint64_t live_before(InstrRef ref) const;

  private:
    const Function& fn_;
    std::vector<uint64_t> live_in_;
    std::vector<uint64_t> live_out_;
};

/** use/def summary of a block. */
struct BlockUseDef
{
    uint64_t use = 0; ///< upward-exposed uses
    uint64_t def = 0; ///< definitions
};

BlockUseDef block_use_def(const BasicBlock& bb);

} // namespace ido::compiler
