/**
 * @file
 * The compiler substrate's intermediate representation.
 *
 * The iDO compiler of the paper operates on LLVM IR (Fig. 4); this repo
 * reproduces its analyses -- FASE inference, idempotent region
 * formation (de Kruijf-style antidependence cutting with a hitting-set
 * selection), live-in preservation and OutputSet computation (Eq. 1) --
 * over a deliberately small IR with the same essential structure:
 * virtual registers, basic blocks with explicit terminators, loads and
 * stores against a (base register + displacement) addressing mode, the
 * FASE-relevant calls (alloc/free/lock/unlock), and branches.
 *
 * Functions written in this IR describe one FASE body.  They can be
 * analyzed (region statistics, verification) and *executed*: the
 * FaseCompiler lowers a partitioned function to an rt::FaseProgram
 * whose regions run through the Interpreter under any runtime,
 * giving a genuinely compiler-directed path from source-like IR to
 * failure-atomic execution.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ido::compiler {

/** Virtual register count cap; masks are uint64_t bitsets. */
constexpr uint32_t kMaxRegs = 64;
constexpr uint32_t kNoReg = 0xffffffffu;

enum class Opcode : uint8_t
{
    kConst,  ///< dst = imm
    kMov,    ///< dst = a
    kAdd,    ///< dst = a + b
    kSub,    ///< dst = a - b
    kMul,    ///< dst = a * b
    kCmpLt,  ///< dst = (a < b)
    kCmpEq,  ///< dst = (a == b)
    kLoad,   ///< dst = heap[a + imm]
    kStore,  ///< heap[a + imm] = b
    kAlloc,  ///< dst = nv_alloc(imm)
    kFree,   ///< nv_free(a)          (runtime defers to FASE end)
    kLock,   ///< fase_lock(a + imm)
    kUnlock, ///< fase_unlock(a + imm)
    kBr,     ///< goto block imm
    kCondBr, ///< if (a != 0) goto block imm else block target2
    kRet,    ///< end of FASE
};

/** True for kBr/kCondBr/kRet. */
bool is_terminator(Opcode op);

/** One instruction; operands a/b are register ids (kNoReg if unused). */
struct Instr
{
    Opcode op = Opcode::kRet;
    uint32_t dst = kNoReg;
    uint32_t a = kNoReg;
    uint32_t b = kNoReg;
    uint64_t imm = 0;     ///< constant / displacement / branch target
    uint32_t target2 = 0; ///< kCondBr: else-block

    /** Registers read by this instruction, as a bitmask. */
    uint64_t uses() const;

    /** Register defined, or kNoReg. */
    uint32_t def() const { return dst; }

    /** Is this a memory read / write of persistent state? */
    bool is_load() const { return op == Opcode::kLoad; }
    bool is_store() const { return op == Opcode::kStore; }
};

struct BasicBlock
{
    std::vector<Instr> instrs;
    std::string name;

    const Instr& terminator() const { return instrs.back(); }
};

/** Position of an instruction: (block, index within block). */
struct InstrRef
{
    uint32_t block = 0;
    uint32_t index = 0;

    bool
    operator==(const InstrRef& o) const
    {
        return block == o.block && index == o.index;
    }

    bool
    operator<(const InstrRef& o) const
    {
        return block != o.block ? block < o.block : index < o.index;
    }
};

/** A FASE body in IR form. */
class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    uint32_t num_blocks() const
    {
        return static_cast<uint32_t>(blocks_.size());
    }

    const BasicBlock& block(uint32_t i) const { return blocks_[i]; }
    BasicBlock& block(uint32_t i) { return blocks_[i]; }

    uint32_t num_regs() const { return num_regs_; }

    /** Registers holding the FASE arguments (live at entry). */
    uint64_t arg_mask() const { return arg_mask_; }

    /** Registers the caller consumes after the FASE (live at kRet). */
    uint64_t ret_mask() const { return ret_mask_; }

    void set_ret_mask(uint64_t mask) { ret_mask_ = mask; }

    // --- construction -------------------------------------------------

    uint32_t new_block(std::string name);
    uint32_t new_reg();

    /** Mark a register as a FASE argument. */
    void add_arg(uint32_t reg);

    /** Append an instruction to a block. */
    void emit(uint32_t block, Instr instr);

    /**
     * Structural sanity: every block ends in exactly one terminator,
     * branch targets are in range, register ids are in range.
     * Panics with a description on violation.
     */
    void validate() const;

    /** Printable listing (debugging and golden tests). */
    std::string dump() const;

  private:
    std::string name_;
    std::vector<BasicBlock> blocks_;
    uint32_t num_regs_ = 0;
    uint64_t arg_mask_ = 0;
    uint64_t ret_mask_ = 0;
};

const char* opcode_name(Opcode op);

} // namespace ido::compiler
