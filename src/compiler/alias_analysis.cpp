#include "compiler/alias_analysis.h"

#include "common/panic.h"

namespace ido::compiler {

namespace {

/** Join two provenances; mismatched facts degrade to unknown. */
Provenance
join(const Provenance& a, const Provenance& b)
{
    if (a.base == Provenance::Base::kUnknown)
        return a;
    if (b.base == Provenance::Base::kUnknown)
        return b;
    if (!a.same_base(b)) {
        return Provenance{}; // unknown
    }
    Provenance out = a;
    if (!b.offset_known || !a.offset_known || a.offset != b.offset) {
        out.offset_known = false;
        out.offset = 0;
    }
    return out;
}

bool
same_prov(const Provenance& a, const Provenance& b)
{
    return a.base == b.base && a.id == b.id
           && a.offset_known == b.offset_known && a.offset == b.offset;
}

} // namespace

AliasAnalysis::AliasAnalysis(const Function& fn)
{
    prov_.assign(fn.num_regs(), Provenance{});
    const_val_.assign(fn.num_regs(), {false, 0});
    std::vector<bool> defined(fn.num_regs(), false);

    // Seed: FASE arguments are distinct symbolic bases.
    for (uint32_t r = 0; r < fn.num_regs(); ++r) {
        if (fn.arg_mask() & (1ull << r)) {
            prov_[r] = Provenance{Provenance::Base::kArg, r, true, 0};
            defined[r] = true;
        }
    }

    // Flow-insensitive fixpoint: two passes suffice for join semantics
    // over a finite lattice of height 2, but iterate to be safe.
    uint32_t alloc_site = 0;
    for (int pass = 0; pass < 3; ++pass) {
        alloc_site = 0;
        bool changed = false;
        for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
            for (const Instr& ins : fn.block(b).instrs) {
                Provenance p{};
                std::pair<bool, uint64_t> cv{false, 0};
                switch (ins.op) {
                  case Opcode::kConst:
                    p = Provenance{Provenance::Base::kAbsolute, 0, true,
                                   static_cast<int64_t>(ins.imm)};
                    cv = {true, ins.imm};
                    break;
                  case Opcode::kMov:
                    p = prov_[ins.a];
                    cv = const_val_[ins.a];
                    break;
                  case Opcode::kAdd:
                  case Opcode::kSub: {
                    const auto& ca = const_val_[ins.a];
                    const auto& cb = const_val_[ins.b];
                    const int64_t sign =
                        ins.op == Opcode::kAdd ? 1 : -1;
                    if (cb.first && prov_[ins.a].offset_known) {
                        p = prov_[ins.a];
                        p.offset +=
                            sign * static_cast<int64_t>(cb.second);
                    } else if (ins.op == Opcode::kAdd && ca.first
                               && prov_[ins.b].offset_known) {
                        p = prov_[ins.b];
                        p.offset += static_cast<int64_t>(ca.second);
                    }
                    if (ca.first && cb.first) {
                        cv = {true, ins.op == Opcode::kAdd
                                        ? ca.second + cb.second
                                        : ca.second - cb.second};
                    }
                    break;
                  }
                  case Opcode::kAlloc:
                    p = Provenance{Provenance::Base::kAlloc,
                                   alloc_site, true, 0};
                    break;
                  default:
                    break; // loads, cmps etc: unknown provenance
                }
                if (ins.op == Opcode::kAlloc)
                    ++alloc_site;
                if (ins.def() == kNoReg)
                    continue;
                const uint32_t d = ins.def();
                Provenance merged =
                    defined[d] ? join(prov_[d], p) : p;
                std::pair<bool, uint64_t> merged_cv =
                    (defined[d]
                     && (!const_val_[d].first || !cv.first
                         || const_val_[d].second != cv.second))
                    ? std::pair<bool, uint64_t>{false, 0}
                    : cv;
                if (!defined[d] || !same_prov(merged, prov_[d])
                    || merged_cv != const_val_[d]) {
                    prov_[d] = merged;
                    const_val_[d] = merged_cv;
                    changed = true;
                }
                defined[d] = true;
            }
        }
        if (!changed)
            break;
    }
}

MemRef
AliasAnalysis::mem_ref(const Instr& ins) const
{
    IDO_ASSERT(ins.is_load() || ins.is_store()
               || ins.op == Opcode::kLock || ins.op == Opcode::kUnlock);
    MemRef ref;
    ref.prov = prov_[ins.a];
    ref.disp = static_cast<int64_t>(ins.imm);
    ref.size = 8;
    return ref;
}

AliasResult
AliasAnalysis::alias(const MemRef& a, const MemRef& b) const
{
    using Base = Provenance::Base;
    // Distinct allocation sites, or allocation vs. pre-existing
    // argument memory, cannot overlap.
    const bool a_alloc = a.prov.base == Base::kAlloc;
    const bool b_alloc = b.prov.base == Base::kAlloc;
    if (a_alloc && b_alloc && a.prov.id != b.prov.id)
        return AliasResult::kNoAlias;
    if ((a_alloc && (b.prov.base == Base::kArg
                     || b.prov.base == Base::kAbsolute))
        || (b_alloc && (a.prov.base == Base::kArg
                        || a.prov.base == Base::kAbsolute))) {
        return AliasResult::kNoAlias;
    }
    if (a.prov.same_base(b.prov) && a.prov.offset_known
        && b.prov.offset_known) {
        const int64_t start_a = a.prov.offset + a.disp;
        const int64_t start_b = b.prov.offset + b.disp;
        if (start_a == start_b && a.size == b.size)
            return AliasResult::kMustAlias;
        if (start_a + static_cast<int64_t>(a.size) <= start_b
            || start_b + static_cast<int64_t>(b.size) <= start_a) {
            return AliasResult::kNoAlias;
        }
        return AliasResult::kMustAlias; // partial overlap
    }
    return AliasResult::kMayAlias;
}

AliasResult
AliasAnalysis::alias(const Instr& a, const Instr& b) const
{
    return alias(mem_ref(a), mem_ref(b));
}

} // namespace ido::compiler
