#include "compiler/interpreter.h"

#include "common/panic.h"
#include "compiler/fase_compiler.h"
#include "runtime/runtime.h"

namespace ido::compiler {

uint32_t
interpreter_trampoline(rt::RuntimeThread& th, rt::RegionCtx& ctx)
{
    const rt::FaseProgram* prog = th.current_program();
    IDO_ASSERT(prog != nullptr && prog->impl != nullptr);
    const auto* cf = static_cast<const CompiledFase*>(prog->impl);
    return interpret_region(*cf, th, ctx);
}

uint32_t
interpret_region(const CompiledFase& cf, rt::RuntimeThread& th,
                 rt::RegionCtx& ctx)
{
    const Function& fn = cf.function();
    const RegionPartition& part = cf.partition();
    const uint32_t region = th.current_region();
    IDO_ASSERT(region < part.num_regions());
    InstrRef pos = part.starts()[region];

    uint64_t steps = 0;
    while (true) {
        IDO_ASSERT(steps < 1u << 22, "runaway interpretation in '%s'",
                   fn.name().c_str());
        // Region boundary?  The entry position only counts before the
        // first instruction runs: a loop back edge returning to our own
        // start is a boundary (each iteration is a region instance).
        uint32_t next_region;
        if (steps > 0 && part.is_region_start(pos, &next_region))
            return next_region;
        ++steps;
        const Instr& ins = fn.block(pos.block).instrs[pos.index];
        InstrRef next{pos.block, pos.index + 1};
        switch (ins.op) {
          case Opcode::kConst:
            ctx.r[ins.dst] = ins.imm;
            break;
          case Opcode::kMov:
            ctx.r[ins.dst] = ctx.r[ins.a];
            break;
          case Opcode::kAdd:
            ctx.r[ins.dst] = ctx.r[ins.a] + ctx.r[ins.b];
            break;
          case Opcode::kSub:
            ctx.r[ins.dst] = ctx.r[ins.a] - ctx.r[ins.b];
            break;
          case Opcode::kMul:
            ctx.r[ins.dst] = ctx.r[ins.a] * ctx.r[ins.b];
            break;
          case Opcode::kCmpLt:
            ctx.r[ins.dst] = ctx.r[ins.a] < ctx.r[ins.b] ? 1 : 0;
            break;
          case Opcode::kCmpEq:
            ctx.r[ins.dst] = ctx.r[ins.a] == ctx.r[ins.b] ? 1 : 0;
            break;
          case Opcode::kLoad:
            ctx.r[ins.dst] = th.load_u64(ctx.r[ins.a] + ins.imm);
            break;
          case Opcode::kStore:
            // Stores the verified persist plan elides carry their
            // redundancy proof to the runtime: a same-region witness
            // provably dirties the same cache line, so the runtime may
            // skip this store's own write-back bookkeeping.
            if (cf.elide_flushes()
                && cf.persist_plan().store_elided(pos))
                th.store_u64_covered(ctx.r[ins.a] + ins.imm,
                                     ctx.r[ins.b]);
            else
                th.store_u64(ctx.r[ins.a] + ins.imm, ctx.r[ins.b]);
            break;
          case Opcode::kAlloc:
            // Plan placement directive: line-align the object so the
            // co-location proofs against this site hold.
            if (cf.elide_flushes()
                && cf.persist_plan().alloc_aligned(pos))
                ctx.r[ins.dst] = th.nv_alloc_line(ins.imm);
            else
                ctx.r[ins.dst] = th.nv_alloc(ins.imm);
            break;
          case Opcode::kFree:
            th.nv_free(ctx.r[ins.a]);
            break;
          case Opcode::kLock:
            th.fase_lock(ctx.r[ins.a] + ins.imm);
            break;
          case Opcode::kUnlock:
            th.fase_unlock(ctx.r[ins.a] + ins.imm);
            break;
          case Opcode::kBr:
            next = InstrRef{static_cast<uint32_t>(ins.imm), 0};
            break;
          case Opcode::kCondBr:
            next = ctx.r[ins.a] != 0
                ? InstrRef{static_cast<uint32_t>(ins.imm), 0}
                : InstrRef{ins.target2, 0};
            break;
          case Opcode::kRet:
            return rt::kRegionEnd;
        }
        pos = next;
    }
}

} // namespace ido::compiler
