#include "compiler/fase_compiler.h"

#include "common/panic.h"
#include "compiler/interpreter.h"
#include "compiler/persistency/flush_elision.h"
#include "compiler/persistency/persist_verify.h"

namespace ido::compiler {

CompiledFase::CompiledFase(uint32_t fase_id, Function fn,
                           LintMode lint_mode, bool elide_flushes)
    : fn_(std::move(fn)), elide_(elide_flushes)
{
    fn_.validate();
    IDO_ASSERT(fn_.num_regs() <= rt::kNumIntRegs,
               "function '%s' uses %u registers; RegionCtx holds %zu",
               fn_.name().c_str(), fn_.num_regs(), rt::kNumIntRegs);

    cfg_ = std::make_unique<Cfg>(fn_);
    aa_ = std::make_unique<AliasAnalysis>(fn_);
    liveness_ = std::make_unique<Liveness>(fn_, *cfg_);

    RegionPartitioner partitioner(fn_, *cfg_, *aa_);
    partition_ = partitioner.run();

    verification_ = verify_idempotence(fn_, *cfg_, *aa_, partition_);
    if (!verification_.ok) {
        for (const std::string& v : verification_.violations)
            warn("verifier: %s", v.c_str());
        panic("idempotence verification failed for '%s' "
              "(%zu violations)",
              fn_.name().c_str(), verification_.violations.size());
    }

    info_ = compute_region_info(fn_, *cfg_, *liveness_, partition_);

    // ido-verify stage: the flush-elision plan is computed and then
    // independently re-proved (translation validation).  Any finding
    // is a proved crash-consistency bug in the optimizer, so this
    // panics regardless of lint mode.
    plan_ = persistency::compute_persist_plan(fn_, *cfg_, *aa_,
                                              partition_, info_);
    const std::vector<lint::Diagnostic> verify_diags =
        persistency::verify_persist_plan(fn_, *cfg_, *aa_, partition_,
                                         info_, plan_);
    if (!verify_diags.empty()) {
        for (const lint::Diagnostic& d : verify_diags)
            warn("ido-verify: %s", d.render().c_str());
        panic("persist-ordering verification failed for '%s' "
              "(%zu findings)",
              fn_.name().c_str(), verify_diags.size());
    }

    if (lint_mode != LintMode::kOff) {
        const lint::LintContext ctx{fn_,        *cfg_,      *aa_,
                                    *liveness_, partition_, info_};
        diagnostics_ = lint::LintRegistry::builtin().lint_function(ctx);
        for (const lint::Diagnostic& d : diagnostics_)
            warn("lint: %s", d.render().c_str());
        const uint32_t errors = lint::count_at_least(
            diagnostics_, lint::Severity::kError);
        if (lint_mode == LintMode::kStrict && errors > 0) {
            panic("lint rejected '%s' in strict mode "
                  "(%u error diagnostics)",
                  fn_.name().c_str(), errors);
        }
    }

    program_.fase_id = fase_id;
    program_.name = fn_.name().c_str();
    program_.impl = this;
    program_.regions.reserve(info_.size());
    for (const RegionInfo& ri : info_) {
        rt::RegionMeta meta{};
        meta.fn = &interpreter_trampoline;
        meta.name = fn_.name().c_str();
        meta.live_in_int = static_cast<uint16_t>(ri.live_in);
        meta.out_int = static_cast<uint16_t>(ri.outputs);
        meta.may_store = ri.num_stores > 0 ? 1 : 0;
        program_.regions.push_back(meta);
    }
}

} // namespace ido::compiler
