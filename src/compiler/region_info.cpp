#include "compiler/region_info.h"

#include "common/panic.h"

namespace ido::compiler {

std::vector<RegionInfo>
compute_region_info(const Function& fn, const Cfg& cfg,
                    const Liveness& live, const RegionPartition& part)
{
    std::vector<RegionInfo> info(part.num_regions());
    for (uint32_t r = 0; r < part.num_regions(); ++r)
        info[r].start = part.starts()[r];

    // Accumulate per-region facts position by position.
    std::vector<uint64_t> uses(part.num_regions(), 0);
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock& bb = fn.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            const Instr& ins = bb.instrs[i];
            const uint32_t r = part.region_of(InstrRef{b, i});
            RegionInfo& ri = info[r];
            ri.num_instrs++;
            uses[r] |= ins.uses();
            if (ins.def() != kNoReg)
                ri.defs |= 1ull << ins.def();
            switch (ins.op) {
              case Opcode::kStore:
                ri.num_stores++;
                break;
              case Opcode::kLoad:
                ri.num_loads++;
                break;
              case Opcode::kLock:
                ri.has_lock = true;
                break;
              case Opcode::kUnlock:
                ri.has_unlock = true;
                break;
              case Opcode::kAlloc:
                ri.has_alloc = true;
                break;
              default:
                break;
            }
        }
    }

    // Inputs: live at the region entry and used inside.
    for (uint32_t r = 0; r < part.num_regions(); ++r)
        info[r].live_in = live.live_before(info[r].start) & uses[r];

    // Outputs: registers defined in r that are live into some
    // successor region (Eq. 1).  Boundary crossings are (a) a region
    // start reached from the predecessor position in the same block,
    // (b) a block entry reached from a predecessor block's last
    // region, (c) kRet exposing the FASE's result registers.
    auto credit = [&](uint32_t from_region, uint64_t live_mask) {
        info[from_region].outputs |=
            info[from_region].defs & live_mask;
    };
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock& bb = fn.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            const InstrRef pos{b, i};
            uint32_t region_here;
            if (part.is_region_start(pos, &region_here) && i > 0) {
                const uint32_t prev =
                    part.region_of(InstrRef{b, i - 1});
                if (prev != region_here)
                    credit(prev, live.live_before(pos));
            }
            if (bb.instrs[i].op == Opcode::kRet) {
                credit(part.region_of(pos), fn.ret_mask());
            }
        }
        // Block-to-block edges.
        const uint32_t end_region =
            part.region_of(InstrRef{
                b, static_cast<uint32_t>(bb.instrs.size() - 1)});
        for (uint32_t s : cfg.successors(b)) {
            const uint32_t succ_region =
                part.block_entry_region(s);
            if (succ_region != end_region) {
                credit(end_region,
                       live.live_before(InstrRef{s, 0}));
            }
        }
    }
    return info;
}

} // namespace ido::compiler
