#include "compiler/ir_library.h"

#include "compiler/builder.h"

namespace ido::compiler {

// Offsets of the ds::PStackRoot layout: lock holder at +0, top at +64;
// node: value at +0, next at +8.
namespace {
constexpr uint64_t kTopOff = 64;
}

IrFase
ir_stack_push()
{
    FnBuilder b("ir.stack.push");
    IrFase out{Function{""}};
    const uint32_t entry = b.block("entry");
    b.switch_to(entry);
    const uint32_t root = b.arg();
    const uint32_t value = b.arg();
    b.lock(root, 0);
    const uint32_t top = b.load(root, kTopOff);
    const uint32_t node = b.alloc(16);
    b.store(node, 0, value);
    b.store(node, 8, top);
    b.store(root, kTopOff, node);
    b.unlock(root, 0);
    b.ret();
    out.fn = b.take();
    out.arg0 = root;
    out.arg1 = value;
    return out;
}

IrFase
ir_stack_pop()
{
    FnBuilder b("ir.stack.pop");
    IrFase out{Function{""}};
    const uint32_t entry = b.block("entry");
    const uint32_t read = b.block("read");
    const uint32_t empty = b.block("empty");
    const uint32_t done = b.block("done");

    b.switch_to(entry);
    const uint32_t root = b.arg();
    const uint32_t found = b.reg();
    const uint32_t value = b.reg();
    b.lock(root, 0);
    const uint32_t top = b.load(root, kTopOff);
    const uint32_t zero = b.cconst(0);
    const uint32_t is_empty = b.cmp_eq(top, zero);
    b.cond_br(is_empty, empty, read);

    b.switch_to(read);
    const uint32_t next = b.load(top, 8);
    b.load_to(value, top, 0);
    b.const_to(found, 1);
    b.store(root, kTopOff, next);
    b.free_(top);
    b.br(done);

    b.switch_to(empty);
    b.const_to(found, 0);
    b.const_to(value, 0);
    b.br(done);

    b.switch_to(done);
    b.unlock(root, 0);
    b.ret();

    Function fn = b.take();
    fn.set_ret_mask((1ull << found) | (1ull << value));
    out.fn = std::move(fn);
    out.arg0 = root;
    out.result = found;
    out.result2 = value;
    return out;
}

IrFase
ir_counter_increment()
{
    FnBuilder b("ir.counter.incr");
    IrFase out{Function{""}};
    const uint32_t entry = b.block("entry");
    b.switch_to(entry);
    const uint32_t counter = b.arg(); // offset of {holder, pad.., value}
    b.lock(counter, 0);
    const uint32_t v = b.load(counter, kTopOff);
    const uint32_t one = b.cconst(1);
    const uint32_t v2 = b.add(v, one);
    b.store(counter, kTopOff, v2);
    b.unlock(counter, 0);
    b.ret();
    Function fn = b.take();
    fn.set_ret_mask(1ull << v2);
    out.fn = std::move(fn);
    out.arg0 = counter;
    out.result = v2;
    return out;
}

IrFase
ir_array_add_loop()
{
    FnBuilder b("ir.array.addloop");
    IrFase out{Function{""}};
    const uint32_t entry = b.block("entry");
    const uint32_t head = b.block("loop_head");
    const uint32_t body = b.block("loop_body");
    const uint32_t exit = b.block("exit");

    b.switch_to(entry);
    const uint32_t base = b.arg();  // array base offset (after holder)
    const uint32_t n = b.arg();     // element count
    const uint32_t delta = b.arg(); // addend
    const uint32_t cursor = b.reg();
    b.lock(base, 0);
    // cursor = base + 64 (elements start one line after the holder)
    const uint32_t sixty_four = b.cconst(64);
    b.mov_to(cursor, b.add(base, sixty_four));
    const uint32_t eight = b.cconst(8);
    const uint32_t n8 = b.mul(n, eight);
    const uint32_t limit = b.add(b.add(base, sixty_four), n8);
    b.br(head);

    b.switch_to(head);
    const uint32_t more = b.cmp_lt(cursor, limit);
    b.cond_br(more, body, exit);

    b.switch_to(body);
    const uint32_t elem = b.load(cursor, 0);
    const uint32_t sum = b.add(elem, delta);
    b.store(cursor, 0, sum);
    const uint32_t advanced = b.add(cursor, eight);
    b.mov_to(cursor, advanced);
    b.br(head);

    b.switch_to(exit);
    b.unlock(base, 0);
    b.ret();

    out.fn = b.take();
    out.arg0 = base;
    out.arg1 = n;
    out.result2 = delta;
    return out;
}

} // namespace ido::compiler
