/**
 * @file
 * Control-flow utilities: successor/predecessor maps, reverse postorder,
 * dominators, loop-header detection.  The region partitioner uses join
 * points and loop headers as mandatory region headers (idempotent
 * regions must be single-entry subgraphs, Sec. II-C).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/ir.h"

namespace ido::compiler {

class Cfg
{
  public:
    explicit Cfg(const Function& fn);

    const std::vector<uint32_t>& successors(uint32_t block) const
    {
        return succs_[block];
    }

    const std::vector<uint32_t>& predecessors(uint32_t block) const
    {
        return preds_[block];
    }

    /** Blocks in reverse postorder from the entry (block 0). */
    const std::vector<uint32_t>& rpo() const { return rpo_; }

    /** Immediate dominator of a block (entry's idom is itself). */
    uint32_t idom(uint32_t block) const { return idom_[block]; }

    bool dominates(uint32_t a, uint32_t b) const;

    /**
     * A block is a loop header if some edge into it comes from a block
     * it dominates (a back edge).
     */
    bool is_loop_header(uint32_t block) const
    {
        return loop_header_[block];
    }

    /** Unreachable blocks are excluded from rpo(). */
    bool reachable(uint32_t block) const { return reachable_[block]; }

    /** Can control reach `to` starting from (and including) `from`? */
    bool reaches(uint32_t from, uint32_t to) const;

  private:
    void compute_rpo();
    void compute_dominators();

    const Function& fn_;
    std::vector<std::vector<uint32_t>> succs_;
    std::vector<std::vector<uint32_t>> preds_;
    std::vector<uint32_t> rpo_;
    std::vector<uint32_t> rpo_index_;
    std::vector<uint32_t> idom_;
    std::vector<bool> loop_header_;
    std::vector<bool> reachable_;
};

} // namespace ido::compiler
