/**
 * @file
 * Executes one idempotent region of a CompiledFase against the
 * runtime-neutral RuntimeThread API.  Loads, stores, allocation and
 * lock operations go through the same instrumented entry points as the
 * hand-lowered programs, so a compiled FASE is failure-atomic under
 * every runtime for free.
 */
#pragma once

#include <cstdint>

#include "runtime/region_ctx.h"

namespace ido::rt {
class RuntimeThread;
}

namespace ido::compiler {

class CompiledFase;

/**
 * Execute the region th.current_region() of cf from its entry until
 * control reaches another region's entry (returns its index) or kRet
 * (returns rt::kRegionEnd).
 */
uint32_t interpret_region(const CompiledFase& cf, rt::RuntimeThread& th,
                          rt::RegionCtx& ctx);

/** RegionFn trampoline: resolves the CompiledFase via program()->impl. */
uint32_t interpreter_trampoline(rt::RuntimeThread& th,
                                rt::RegionCtx& ctx);

} // namespace ido::compiler
