/**
 * @file
 * A basicAA-style alias analysis (the paper uses LLVM's basic-AA and
 * notes it is "quite conservative"; so is this one, deliberately).
 *
 * Each register gets a flow-insensitive *provenance*: a base (FASE
 * argument, allocation site, or absolute constant) plus an optional
 * known byte offset.  Memory references (base register + displacement)
 * are then compared:
 *
 *  - same base, both offsets known: overlap is decidable exactly;
 *  - two distinct allocation sites never alias;
 *  - a fresh allocation never aliases an argument-derived pointer
 *    (the argument existed before the allocation);
 *  - anything involving an unknown provenance may alias.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/ir.h"

namespace ido::compiler {

enum class AliasResult
{
    kNoAlias,
    kMayAlias,
    kMustAlias,
};

/** Where a register's value ultimately came from. */
struct Provenance
{
    enum class Base : uint8_t
    {
        kUnknown,  ///< loaded from memory, merged, or untracked math
        kArg,      ///< the FASE argument register `id`
        kAlloc,    ///< the allocation at instruction site `id`
        kAbsolute, ///< a compile-time constant address
    };

    Base base = Base::kUnknown;
    uint32_t id = 0;
    bool offset_known = false;
    int64_t offset = 0;

    bool
    same_base(const Provenance& o) const
    {
        return base == o.base && id == o.id
               && base != Base::kUnknown;
    }
};

/** A memory reference: the address register's provenance + disp. */
struct MemRef
{
    Provenance prov;
    int64_t disp = 0;
    uint32_t size = 8;
};

class AliasAnalysis
{
  public:
    explicit AliasAnalysis(const Function& fn);

    /** Provenance of a register (flow-insensitive join). */
    const Provenance& provenance(uint32_t reg) const
    {
        return prov_[reg];
    }

    /** Reference made by a load/store instruction. */
    MemRef mem_ref(const Instr& ins) const;

    AliasResult alias(const MemRef& a, const MemRef& b) const;

    /** Convenience: alias of two load/store instructions. */
    AliasResult alias(const Instr& a, const Instr& b) const;

  private:
    std::vector<Provenance> prov_;
    std::vector<std::pair<bool, uint64_t>> const_val_;
};

} // namespace ido::compiler
