#include "compiler/dataflow.h"

#include "common/panic.h"

namespace ido::compiler {

BlockUseDef
block_use_def(const BasicBlock& bb)
{
    BlockUseDef ud;
    for (const Instr& ins : bb.instrs) {
        ud.use |= ins.uses() & ~ud.def;
        if (ins.def() != kNoReg)
            ud.def |= 1ull << ins.def();
    }
    return ud;
}

Liveness::Liveness(const Function& fn, const Cfg& cfg)
    : fn_(fn)
{
    const uint32_t n = fn.num_blocks();
    live_in_.assign(n, 0);
    live_out_.assign(n, 0);
    std::vector<BlockUseDef> ud(n);
    for (uint32_t b = 0; b < n; ++b)
        ud[b] = block_use_def(fn.block(b));

    // Backward iteration until fixpoint (post order = reversed RPO).
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend();
             ++it) {
            const uint32_t b = *it;
            uint64_t out = 0;
            for (uint32_t s : cfg.successors(b))
                out |= live_in_[s];
            if (fn.block(b).terminator().op == Opcode::kRet)
                out |= fn.ret_mask(); // FASE results consumed by caller
            const uint64_t in = ud[b].use | (out & ~ud[b].def);
            if (out != live_out_[b] || in != live_in_[b]) {
                live_out_[b] = out;
                live_in_[b] = in;
                changed = true;
            }
        }
    }
}

uint64_t
Liveness::live_before(InstrRef ref) const
{
    const BasicBlock& bb = fn_.block(ref.block);
    IDO_ASSERT(ref.index <= bb.instrs.size());
    // Walk backward from block exit to the requested position.
    uint64_t live = live_out_[ref.block];
    for (size_t i = bb.instrs.size(); i-- > ref.index;) {
        const Instr& ins = bb.instrs[i];
        if (ins.def() != kNoReg)
            live &= ~(1ull << ins.def());
        live |= ins.uses();
    }
    return live;
}

} // namespace ido::compiler
