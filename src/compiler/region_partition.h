/**
 * @file
 * Idempotent region formation (paper Sec. IV-A-b).
 *
 * Following de Kruijf et al. (PLDI 2012), the partitioner computes the
 * set of antidependent access pairs (via the alias analysis) and then
 * chooses cutting points with a greedy hitting-set strategy so that
 * every pair is separated by a region boundary.  Additional mandatory
 * boundaries implement the iDO-specific rules: a boundary immediately
 * after each lock acquire and immediately before each lock release
 * (Sec. III-B), plus structural boundaries at control-flow joins and
 * loop headers so each region is a single-entry subgraph (Sec. II-C).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/alias_analysis.h"
#include "compiler/antidep.h"
#include "compiler/cfg.h"
#include "compiler/ir.h"

namespace ido::compiler {

/** A computed partition of a function into idempotent regions. */
class RegionPartition
{
  public:
    /** Region entry points, sorted; region ids index this vector. */
    const std::vector<InstrRef>& starts() const { return starts_; }

    uint32_t num_regions() const
    {
        return static_cast<uint32_t>(starts_.size());
    }

    /** Region containing a position. */
    uint32_t region_of(InstrRef pos) const;

    /** Is this position a region entry?  If so, which region? */
    bool is_region_start(InstrRef pos, uint32_t* region) const;

    /** Region in effect when a block is entered. */
    uint32_t block_entry_region(uint32_t block) const
    {
        return block_entry_region_[block];
    }

    /** Is there a region start at (block, c) with lo <= c <= hi? */
    bool has_cut_in(uint32_t block, uint32_t lo, uint32_t hi) const;

    // --- statistics (Sec. V-C flavour) --------------------------------

    uint32_t antidep_cut_count() const { return antidep_cuts_; }
    uint32_t mandatory_cut_count() const { return mandatory_cuts_; }

  private:
    friend class RegionPartitioner;

    std::vector<InstrRef> starts_;
    std::vector<uint32_t> block_entry_region_;
    /** Per block: sorted (instr index, region id) cut list. */
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> cuts_;
    uint32_t antidep_cuts_ = 0;
    uint32_t mandatory_cuts_ = 0;
};

class RegionPartitioner
{
  public:
    RegionPartitioner(const Function& fn, const Cfg& cfg,
                      const AliasAnalysis& aa);

    /**
     * Request an extra cut at a position before run().  Forced cuts
     * participate in antidependence coverage but are counted in
     * neither statistic; they serve region-granularity experiments
     * and lint fixtures (a forced cut that covers nothing is exactly
     * what the dead-boundary check flags).
     */
    void force_cut(InstrRef pos) { forced_.push_back(pos); }

    /** Run the full pipeline and return the partition. */
    RegionPartition run();

    /** The antidependence pairs the last run() had to cover. */
    const std::vector<AntidepPair>& pairs() const { return pairs_; }

  private:
    const Function& fn_;
    const Cfg& cfg_;
    const AliasAnalysis& aa_;
    std::vector<AntidepPair> pairs_;
    std::vector<InstrRef> forced_;
};

} // namespace ido::compiler
