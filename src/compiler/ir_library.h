/**
 * @file
 * IR versions of representative FASE bodies.
 *
 * These are the "source programs" of the compiler path: the same stack
 * operations as the hand-lowered ds/ versions (tests cross-check the
 * two), a classic read-modify-write counter, and a loop-based batch
 * update.  The compiler must discover the region structure on its own
 * -- each body is written as straight-line/naturally-shaped code with
 * no manual region hints.
 *
 * Register conventions are returned via IrFase so callers know where
 * to place arguments and find results.
 */
#pragma once

#include "compiler/ir.h"

namespace ido::compiler {

struct IrFase
{
    Function fn;
    uint32_t arg0 = 0;   ///< first argument register
    uint32_t arg1 = 0;   ///< second argument register (if any)
    uint32_t result = 0; ///< result register (if any)
    uint32_t result2 = 0;
};

/**
 * Stack push against the ds::PStackRoot layout:
 *   lock; t = top; n = alloc; n.value = v; n.next = t; top = n; unlock.
 * One straight-line block: the antidependence on `top` and the lock
 * rules force exactly the hand-lowered 4-region structure.
 */
IrFase ir_stack_push();

/** Stack pop (branching: empty vs. non-empty). */
IrFase ir_stack_pop();

/**
 * Counter increment: v = load c; v2 = v + 1; store c = v2, under a
 * lock.  The minimal antidependence example from Sec. II-C.
 */
IrFase ir_counter_increment();

/**
 * Batch update loop: for i in [0, n): a[i] = a[i] + delta.  Exercises
 * loop-header boundaries and loop-carried register state.
 */
IrFase ir_array_add_loop();

} // namespace ido::compiler
