/**
 * @file
 * The currency of ido-verify: cache-line persist plans and their
 * machine-checkable redundancy proofs.
 *
 * The iDO boundary protocol persists every heap line a region stored
 * (tracked at run time as pending write-back ranges) before fence 1,
 * then publishes recovery_pc behind fence 2.  At cache-line
 * granularity many of those write-backs are redundant: two stores of
 * one region that provably land on the same line need only one
 * pending range, and InCLL-style placement (Cohen et al.) can *make*
 * them land on one line by aligning the allocation they target.  A
 * PersistPlan records exactly which per-store write-backs the
 * compiler elides and why, plus which region boundaries may defer
 * their pc fence (the group-persist rule of ido_runtime.h), so an
 * independent verifier (persist_verify.h) can replay the persist-state
 * dataflow and confirm no crash frontier ever observes an elided
 * store's line dirty after its covering fence.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "compiler/alias_analysis.h"
#include "compiler/ir.h"

namespace ido::compiler::persistency {

/** Abstract store footprint: base object + known byte interval. */
struct LineFootprint
{
    Provenance prov;  ///< base object (arg / alloc site / absolute)
    int64_t lo = 0;   ///< first byte, relative to the object start
    int64_t hi = 0;   ///< one past the last byte
    bool known = false;

    /** Footprint of a store instruction (known iff base+disp resolve). */
    static LineFootprint of_store(const AliasAnalysis& aa,
                                  const Instr& ins);
};

enum class ProofKind : uint8_t
{
    /** Distinct words of one provable cache line (InCLL co-location). */
    kSameLineCoLocation,
    /** The exact same word is stored again in the same region. */
    kAlreadyPersisted,
    /** Boundary pc fence deferrable: every remaining region is
     *  store-free, so the flush it orders is dominated by the next
     *  covering fence. */
    kDeferredTailFence,
};

const char* proof_kind_name(ProofKind k);

/** One elided per-store write-back and its justification. */
struct ElisionProof
{
    ProofKind kind = ProofKind::kSameLineCoLocation;
    InstrRef store;   ///< the store whose pending range is dropped
    InstrRef witness; ///< kept store whose range covers the same line
};

/**
 * A persist plan for one FASE: what the compiler may skip, and the
 * placement directives that make the proofs hold.  The empty plan is
 * trivially sound (nothing elided, nothing deferred).
 */
struct PersistPlan
{
    /**
     * kAlloc sites the interpreter must serve cache-line-aligned so
     * the same-line proofs against them hold (only sites whose object
     * fits in one line are eligible).
     */
    std::vector<InstrRef> aligned_alloc_sites;

    /** Stores whose boundary write-back is provably redundant. */
    std::vector<ElisionProof> elisions;

    /**
     * Region indices r such that the boundary *entering* r may defer
     * its recovery_pc fence: every region j >= r is store-free, the
     * static mirror of the runtime's tail_read_only condition.
     */
    std::vector<uint32_t> deferrable_boundaries;

    bool store_elided(InstrRef pos) const;
    bool alloc_aligned(InstrRef pos) const;
};

/**
 * Guaranteed alignment (bytes) of the object a provenance names, given
 * the plan's placement directives: 64 for line-sized or plan-aligned
 * allocations, 16 for other allocations (the NvHeap::alloc contract),
 * 0 (no guarantee) for arguments and everything else.
 */
uint32_t base_alignment(const Function& fn, const Provenance& prov,
                        const PersistPlan& plan);

/**
 * Are two footprints on the same base provably within one cache line
 * under an alignment guarantee?  Line boundaries inside an
 * `align`-aligned object fall only at offsets that are multiples of
 * min(align, 64), so the union of the two intervals must fit inside
 * one such window.  With no alignment guarantee (align < 2) only the
 * exact same interval qualifies: identical bytes dirty identical
 * lines wherever they land.
 */
bool provably_same_line(const LineFootprint& a, const LineFootprint& b,
                        uint32_t align);

/** InstrRef of each kAlloc site, indexed by AliasAnalysis site id. */
std::vector<InstrRef> alloc_site_positions(const Function& fn);

} // namespace ido::compiler::persistency
