/**
 * @file
 * The proof-driven flush-elision pass (ido-verify's optimizer half).
 *
 * Walks every cut-free straight-line segment of each region and groups
 * the stores whose footprints provably share one cache line; all but
 * one member of each group may skip the runtime's per-store pending
 * write-back, because the surviving witness's range already covers the
 * line when the boundary protocol flushes it.  Where InCLL-style
 * co-location only holds under stronger placement, the pass directs
 * the interpreter to line-align the allocation site (objects up to one
 * line), turning a maybe-same-line into a provable one.  Also derives
 * the store-free-tail set of region boundaries whose pc fence the
 * group-persist mode may defer.
 *
 * The pass only *claims*; persist_verify.h independently checks every
 * claim against the persist-state dataflow, and CompiledFase refuses
 * to build a program whose plan fails verification.
 */
#pragma once

#include "compiler/cfg.h"
#include "compiler/persistency/persist_plan.h"
#include "compiler/region_info.h"
#include "compiler/region_partition.h"

namespace ido::compiler::persistency {

PersistPlan compute_persist_plan(const Function& fn, const Cfg& cfg,
                                 const AliasAnalysis& aa,
                                 const RegionPartition& part,
                                 const std::vector<RegionInfo>& info);

} // namespace ido::compiler::persistency
