#include "compiler/persistency/persist_verify.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>

namespace ido::compiler::persistency {

namespace {

using lint::Diagnostic;
using lint::Severity;
using lint::TraceStep;

bool
valid_pos(const Function& fn, InstrRef pos)
{
    return pos.block < fn.num_blocks()
           && pos.index < fn.block(pos.block).instrs.size();
}

const Instr&
at(const Function& fn, InstrRef pos)
{
    return fn.block(pos.block).instrs[pos.index];
}

/** Positions control may reach after executing the one at `pos`. */
std::vector<InstrRef>
successors(const Function& fn, InstrRef pos)
{
    const Instr& ins = at(fn, pos);
    switch (ins.op) {
      case Opcode::kRet:
        return {};
      case Opcode::kBr:
        return {InstrRef{static_cast<uint32_t>(ins.imm), 0}};
      case Opcode::kCondBr:
        return {InstrRef{static_cast<uint32_t>(ins.imm), 0},
                InstrRef{ins.target2, 0}};
      default:
        return {InstrRef{pos.block, pos.index + 1}};
    }
}

/**
 * Does executing `pos` push a pending write-back that covers the
 * elided footprint's cache line?  Only non-elided stores push; the
 * co-location proof is the same relation the optimizer claimed.
 */
bool
covers(const Function& fn, const AliasAnalysis& aa,
       const PersistPlan& plan, const LineFootprint& target,
       uint32_t align, InstrRef pos)
{
    const Instr& ins = at(fn, pos);
    if (!ins.is_store() || plan.store_elided(pos))
        return false;
    const LineFootprint fp = LineFootprint::of_store(aa, ins);
    return fp.known && provably_same_line(target, fp, align);
}

std::string
pos_str(InstrRef pos)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "bb%u:%u", pos.block, pos.index);
    return buf;
}

/** Reconstruct the BFS parent chain from `from` back to the root. */
std::vector<InstrRef>
chain_of(const std::map<InstrRef, InstrRef>& parent, InstrRef from,
         InstrRef root)
{
    std::vector<InstrRef> path{from};
    while (!(from == root)) {
        from = parent.at(from);
        path.push_back(from);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

/**
 * BFS over positions that never executes a covering store.  Two modes:
 *  - prefix: find a cover-free path from the region entry to the
 *    elided store (stays inside the region);
 *  - suffix: find a cover-free path from just after the elided store
 *    to an instance end (a region start, or past kRet).
 * Returns the path, or nullopt if every such path executes a cover.
 */
std::optional<std::vector<InstrRef>>
find_uncovered_path(const Function& fn, const AliasAnalysis& aa,
                    const RegionPartition& part, const PersistPlan& plan,
                    const LineFootprint& target, uint32_t align,
                    InstrRef root, InstrRef store, bool prefix)
{
    std::deque<InstrRef> queue{root};
    std::map<InstrRef, InstrRef> parent;
    uint32_t region = 0;
    while (!queue.empty()) {
        const InstrRef pos = queue.front();
        queue.pop_front();
        if (prefix && pos == store)
            return chain_of(parent, pos, root);
        if (!prefix
            && (part.is_region_start(pos, &region)
                || at(fn, pos).op == Opcode::kRet))
            return chain_of(parent, pos, root);
        if (covers(fn, aa, plan, target, align, pos))
            continue; // this path is safe; stop extending it
        for (const InstrRef& succ : successors(fn, pos)) {
            // In prefix mode a region start means the instance ended
            // without reaching the store: not a counterexample path.
            if (prefix && part.is_region_start(succ, &region))
                continue;
            if (parent.count(succ))
                continue;
            parent.emplace(succ, pos);
            queue.push_back(succ);
        }
    }
    return std::nullopt;
}

void
describe_path(const Function& fn, const std::vector<InstrRef>& path,
              const char* first_note, const char* last_note,
              std::vector<TraceStep>& out)
{
    for (size_t i = 0; i < path.size(); ++i) {
        TraceStep step;
        step.loc = path[i];
        if (i == 0 && first_note != nullptr)
            step.note = first_note;
        else if (i + 1 == path.size() && last_note != nullptr)
            step.note = last_note;
        else
            step.note = opcode_name(at(fn, path[i]).op);
        out.push_back(std::move(step));
    }
}

void
check_aligned_sites(const Function& fn, const PersistPlan& plan,
                    std::vector<Diagnostic>& out)
{
    for (const InstrRef& site : plan.aligned_alloc_sites) {
        if (valid_pos(fn, site) && at(fn, site).op == Opcode::kAlloc)
            continue;
        out.push_back(lint::make_diag(
            "fence-without-flush", Severity::kError, fn.name(), site,
            "plan line-aligns %s, which is not an allocation site",
            pos_str(site).c_str()));
    }
}

void
check_elision(const Function& fn, const AliasAnalysis& aa,
              const RegionPartition& part, const PersistPlan& plan,
              const ElisionProof& e, std::vector<Diagnostic>& out)
{
    // --- structural soundness of the proof itself --------------------
    if (!valid_pos(fn, e.store) || !at(fn, e.store).is_store()) {
        out.push_back(lint::make_diag(
            "fence-without-flush", Severity::kError, fn.name(), e.store,
            "%s elision names a position that is not a store",
            proof_kind_name(e.kind)));
        return;
    }
    if (!valid_pos(fn, e.witness) || !at(fn, e.witness).is_store()
        || e.witness == e.store || plan.store_elided(e.witness)) {
        out.push_back(lint::make_diag(
            "fence-without-flush", Severity::kError, fn.name(), e.store,
            "%s elision of %s has no flushing witness (%s is elided, "
            "absent, or not a store)",
            proof_kind_name(e.kind), pos_str(e.store).c_str(),
            pos_str(e.witness).c_str()));
        return;
    }
    const LineFootprint target =
        LineFootprint::of_store(aa, at(fn, e.store));
    const LineFootprint wfp =
        LineFootprint::of_store(aa, at(fn, e.witness));
    const uint32_t align = base_alignment(fn, target.prov, plan);
    if (!target.known || !wfp.known
        || !provably_same_line(target, wfp, align)) {
        out.push_back(lint::make_diag(
            "fence-without-flush", Severity::kError, fn.name(), e.store,
            "%s elision of %s: witness %s does not provably share its "
            "cache line (alignment guarantee %u)",
            proof_kind_name(e.kind), pos_str(e.store).c_str(),
            pos_str(e.witness).c_str(), align));
        return;
    }

    // --- path coverage: every instance executing the store must also
    //     execute a covering non-elided store ------------------------
    const uint32_t region = part.region_of(e.store);
    const InstrRef entry = part.starts()[region];
    const auto prefix = find_uncovered_path(
        fn, aa, part, plan, target, align, entry, e.store, true);
    if (!prefix.has_value())
        return; // every path into the store is already covered
    // A store is never a terminator, so it has one successor.
    const InstrRef after{e.store.block, e.store.index + 1};
    uint32_t r2 = 0;
    std::optional<std::vector<InstrRef>> suffix;
    if (part.is_region_start(after, &r2)) {
        suffix = std::vector<InstrRef>{}; // boundary right after store
    } else {
        suffix = find_uncovered_path(fn, aa, part, plan, target, align,
                                     after, e.store, false);
    }
    if (!suffix.has_value())
        return; // every path out of the store is covered

    Diagnostic d = lint::make_diag(
        "missing-persist", Severity::kError, fn.name(), e.store,
        "store %s elided (%s via witness %s) but some instance reaches "
        "its boundary without a covering write-back: the line is dirty "
        "at the crash frontier",
        pos_str(e.store).c_str(), proof_kind_name(e.kind),
        pos_str(e.witness).c_str());
    describe_path(fn, *prefix, "region entry (recovery_pc points here)",
                  "store executes; pending write-back elided",
                  d.trace);
    if (suffix->empty()) {
        d.trace.back().note =
            "store executes; instance ends with no covering "
            "write-back pending -- crash at the boundary loses it";
    } else {
        describe_path(fn, *suffix, nullptr,
                      "region boundary: flush set omits the line; a "
                      "crash after fence 1 loses the store",
                      d.trace);
    }
    out.push_back(std::move(d));
}

void
check_deferrals(const Function& fn, const RegionPartition& part,
                const std::vector<RegionInfo>& info,
                const PersistPlan& plan, std::vector<Diagnostic>& out)
{
    const uint32_t n = static_cast<uint32_t>(info.size());
    for (const uint32_t r : plan.deferrable_boundaries) {
        if (r == 0 || r >= n) {
            out.push_back(lint::make_diag(
                "unsound-deferral", Severity::kError, fn.name(),
                InstrRef{0, 0},
                "deferral claim names region %u (valid: 1..%u)", r,
                n - 1));
            continue;
        }
        for (uint32_t j = r; j < n; ++j) {
            if (info[j].num_stores == 0)
                continue;
            // Anchor at the first store of the offending region.
            InstrRef bad = info[j].start;
            bool found = false;
            for (uint32_t b = 0; !found && b < fn.num_blocks(); ++b) {
                for (uint32_t i = 0;
                     i < fn.block(b).instrs.size(); ++i) {
                    const InstrRef pos{b, i};
                    if (fn.block(b).instrs[i].is_store()
                        && part.region_of(pos) == j) {
                        bad = pos;
                        found = true;
                        break;
                    }
                }
            }
            Diagnostic d = lint::make_diag(
                "unsound-deferral", Severity::kError, fn.name(), bad,
                "pc fence entering region %u deferred, but region %u "
                "is not store-free: a crash replays from a stale "
                "recovery_pc past this store",
                r, j);
            d.trace.push_back(TraceStep{
                part.starts()[r],
                "boundary whose recovery_pc fence the plan defers"});
            d.trace.push_back(TraceStep{
                bad, "NVM store in a claimed store-free tail"});
            out.push_back(std::move(d));
            break; // one counterexample per bad claim
        }
    }
}

} // namespace

std::vector<Diagnostic>
verify_persist_plan(const Function& fn, const Cfg& cfg,
                    const AliasAnalysis& aa,
                    const RegionPartition& part,
                    const std::vector<RegionInfo>& info,
                    const PersistPlan& plan)
{
    (void)cfg;
    std::vector<Diagnostic> out;
    check_aligned_sites(fn, plan, out);
    for (const ElisionProof& e : plan.elisions)
        check_elision(fn, aa, part, plan, e, out);
    check_deferrals(fn, part, info, plan, out);
    return out;
}

} // namespace ido::compiler::persistency
