#include "compiler/persistency/flush_elision.h"

#include <algorithm>
#include <cstddef>

namespace ido::compiler::persistency {

namespace {

/** A store inside one cut-free segment, with its abstract footprint. */
struct StoreRec
{
    InstrRef pos;
    LineFootprint fp;
};

/**
 * Split every block into maximal runs of instructions with no region
 * start strictly inside, and collect the known-footprint stores of
 * each run.  A region start at instruction i begins a new segment at
 * i: stores on opposite sides of a cut reach different boundary
 * flushes and must never cover for each other.
 */
std::vector<std::vector<StoreRec>>
collect_segments(const Function& fn, const AliasAnalysis& aa,
                 const RegionPartition& part)
{
    std::vector<std::vector<StoreRec>> segments;
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        const BasicBlock& bb = fn.block(b);
        std::vector<StoreRec> cur;
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            uint32_t region = 0;
            if (i > 0 && part.is_region_start(InstrRef{b, i}, &region)) {
                if (cur.size() > 1)
                    segments.push_back(std::move(cur));
                cur.clear();
            }
            const Instr& ins = bb.instrs[i];
            if (!ins.is_store())
                continue;
            const LineFootprint fp = LineFootprint::of_store(aa, ins);
            if (fp.known)
                cur.push_back(StoreRec{InstrRef{b, i}, fp});
        }
        if (cur.size() > 1)
            segments.push_back(std::move(cur));
    }
    return segments;
}

/**
 * Greedy same-line grouping: each store joins the first group whose
 * witness (the group's program-order-first store) provably shares a
 * cache line with it.  Every member is pairwise same-line with the
 * witness, which is exactly the relation the verifier re-checks.
 * Returns the number of elisions (members beyond each witness).
 * When `out` is non-null, also emits the proofs.
 */
size_t
group_segment(const Function& fn, const std::vector<StoreRec>& seg,
              const PersistPlan& plan, std::vector<ElisionProof>* out)
{
    size_t elided = 0;
    std::vector<const StoreRec*> witnesses;
    for (const StoreRec& s : seg) {
        const uint32_t g = base_alignment(fn, s.fp.prov, plan);
        const StoreRec* home = nullptr;
        for (const StoreRec* w : witnesses) {
            if (provably_same_line(w->fp, s.fp, g)) {
                home = w;
                break;
            }
        }
        if (home == nullptr) {
            witnesses.push_back(&s);
            continue;
        }
        ++elided;
        if (out != nullptr) {
            ElisionProof e;
            e.kind = (home->fp.lo == s.fp.lo && home->fp.hi == s.fp.hi)
                         ? ProofKind::kAlreadyPersisted
                         : ProofKind::kSameLineCoLocation;
            e.store = s.pos;
            e.witness = home->pos;
            out->push_back(e);
        }
    }
    return elided;
}

/**
 * InCLL-style placement: a sub-line allocation only guarantees 16-byte
 * placement, so stores 8 and 24 bytes in may or may not share a line.
 * Serving the site cache-line-aligned removes the ambiguity.  Promote
 * exactly the sites where that alignment lets strictly more stores
 * group than their natural placement does.
 */
void
promote_alloc_sites(const Function& fn,
                    const std::vector<std::vector<StoreRec>>& segments,
                    PersistPlan& plan)
{
    const std::vector<InstrRef> sites = alloc_site_positions(fn);
    for (uint32_t id = 0; id < sites.size(); ++id) {
        const InstrRef site = sites[id];
        const Instr& ins = fn.block(site.block).instrs[site.index];
        if (ins.imm >= kCacheLineBytes)
            continue; // already line-aligned by the allocator contract
        PersistPlan aligned = plan;
        aligned.aligned_alloc_sites.push_back(site);
        size_t natural = 0;
        size_t promoted = 0;
        for (const std::vector<StoreRec>& seg : segments) {
            std::vector<StoreRec> mine;
            for (const StoreRec& s : seg) {
                if (s.fp.prov.base == Provenance::Base::kAlloc
                    && s.fp.prov.id == id)
                    mine.push_back(s);
            }
            if (mine.size() < 2)
                continue;
            natural += group_segment(fn, mine, plan, nullptr);
            promoted += group_segment(fn, mine, aligned, nullptr);
        }
        if (promoted > natural)
            plan.aligned_alloc_sites.push_back(site);
    }
}

} // namespace

PersistPlan
compute_persist_plan(const Function& fn, const Cfg& cfg,
                     const AliasAnalysis& aa,
                     const RegionPartition& part,
                     const std::vector<RegionInfo>& info)
{
    (void)cfg;
    PersistPlan plan;

    const std::vector<std::vector<StoreRec>> segments =
        collect_segments(fn, aa, part);
    promote_alloc_sites(fn, segments, plan);
    for (const std::vector<StoreRec>& seg : segments)
        group_segment(fn, seg, plan, &plan.elisions);

    // Boundaries entering an all-store-free tail may defer their pc
    // fence (the static mirror of the runtime's tail_read_only test).
    const uint32_t n = static_cast<uint32_t>(info.size());
    for (uint32_t r = n; r-- > 1;) {
        if (info[r].num_stores > 0)
            break;
        plan.deferrable_boundaries.push_back(r);
    }
    std::reverse(plan.deferrable_boundaries.begin(),
                 plan.deferrable_boundaries.end());
    return plan;
}

} // namespace ido::compiler::persistency
