/**
 * @file
 * The persist-ordering verifier (ido-verify's checker half).
 *
 * Replays the cache-line persist-state dataflow (dirty -> flushed ->
 * fenced, at region-boundary granularity) against a PersistPlan and
 * reports every way the plan could lose a store across a crash:
 *
 *   fence-without-flush  a structural hole in a redundancy proof: the
 *                        claimed witness does not provably cover the
 *                        elided store's cache line, so the boundary
 *                        fence orders a flush that never happens;
 *   missing-persist      some execution path reaches a region boundary
 *                        with the elided store's line dirty and no
 *                        covering write-back pending -- reported with
 *                        the concrete crash-frontier path;
 *   unsound-deferral     a boundary whose pc fence the plan defers even
 *                        though a later region stores to NVM, so a
 *                        crash replays from a stale recovery_pc.
 *
 * All findings are errors: each is a proof of a crash-consistency bug,
 * not a may-happen warning.  The empty plan always verifies clean; a
 * plan from compute_persist_plan is expected to as well (translation
 * validation -- the optimizer is not trusted, its output is re-proved).
 */
#pragma once

#include <vector>

#include "compiler/cfg.h"
#include "compiler/lint/diagnostic.h"
#include "compiler/persistency/persist_plan.h"
#include "compiler/region_info.h"
#include "compiler/region_partition.h"

namespace ido::compiler::persistency {

std::vector<lint::Diagnostic>
verify_persist_plan(const Function& fn, const Cfg& cfg,
                    const AliasAnalysis& aa,
                    const RegionPartition& part,
                    const std::vector<RegionInfo>& info,
                    const PersistPlan& plan);

} // namespace ido::compiler::persistency
