#include "compiler/persistency/persist_plan.h"

#include <algorithm>

namespace ido::compiler::persistency {

const char*
proof_kind_name(ProofKind k)
{
    switch (k) {
      case ProofKind::kSameLineCoLocation:
        return "same-line-co-location";
      case ProofKind::kAlreadyPersisted:
        return "already-persisted";
      case ProofKind::kDeferredTailFence:
        return "deferred-tail-fence";
    }
    return "?";
}

LineFootprint
LineFootprint::of_store(const AliasAnalysis& aa, const Instr& ins)
{
    LineFootprint fp;
    if (!ins.is_store())
        return fp;
    const MemRef ref = aa.mem_ref(ins);
    fp.prov = ref.prov;
    if (ref.prov.base != Provenance::Base::kUnknown
        && ref.prov.offset_known) {
        fp.lo = ref.prov.offset + ref.disp;
        fp.hi = fp.lo + ref.size;
        fp.known = true;
    }
    return fp;
}

bool
PersistPlan::store_elided(InstrRef pos) const
{
    for (const ElisionProof& e : elisions) {
        if (e.store == pos)
            return true;
    }
    return false;
}

bool
PersistPlan::alloc_aligned(InstrRef pos) const
{
    for (const InstrRef& s : aligned_alloc_sites) {
        if (s == pos)
            return true;
    }
    return false;
}

uint32_t
base_alignment(const Function& fn, const Provenance& prov,
               const PersistPlan& plan)
{
    if (prov.base != Provenance::Base::kAlloc)
        return 0;
    const std::vector<InstrRef> sites = alloc_site_positions(fn);
    if (prov.id >= sites.size())
        return 0;
    const InstrRef site = sites[prov.id];
    const Instr& ins = fn.block(site.block).instrs[site.index];
    if (ins.imm >= kCacheLineBytes || plan.alloc_aligned(site))
        return static_cast<uint32_t>(kCacheLineBytes);
    return 16; // NvHeap::alloc payload alignment
}

bool
provably_same_line(const LineFootprint& a, const LineFootprint& b,
                   uint32_t align)
{
    if (!a.known || !b.known || !a.prov.same_base(b.prov))
        return false;
    if (a.lo == b.lo && a.hi == b.hi)
        return true; // identical bytes dirty identical lines
    const int64_t g = std::min<int64_t>(align, kCacheLineBytes);
    if (g < 2)
        return false;
    const int64_t lo = std::min(a.lo, b.lo);
    const int64_t hi = std::max(a.hi, b.hi);
    if (lo < 0)
        return false;
    return lo / g == (hi - 1) / g;
}

std::vector<InstrRef>
alloc_site_positions(const Function& fn)
{
    // Same block-major order as AliasAnalysis assigns site ids.
    std::vector<InstrRef> sites;
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        const BasicBlock& bb = fn.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            if (bb.instrs[i].op == Opcode::kAlloc)
                sites.push_back(InstrRef{b, i});
        }
    }
    return sites;
}

} // namespace ido::compiler::persistency
