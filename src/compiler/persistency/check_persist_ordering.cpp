/**
 * @file
 * The persist-ordering lint check: translation validation of the
 * flush-elision optimizer.
 *
 * Runs compute_persist_plan over the FASE and then re-proves every
 * claim the plan makes with verify_persist_plan.  A sound pipeline
 * produces no diagnostics at all; any finding is an error naming the
 * crash-frontier it exhibits ("missing-persist",
 * "fence-without-flush", "unsound-deferral").  Hand-crafted unsound
 * plans are exercised directly through verify_persist_plan in tests;
 * this pass is the always-on gate over what the compiler actually
 * ships.
 */
#include "compiler/lint/lint.h"
#include "compiler/persistency/flush_elision.h"
#include "compiler/persistency/persist_verify.h"

namespace ido::compiler::lint {

namespace {

class PersistOrderingCheck final : public LintPass
{
  public:
    const char*
    id() const override
    {
        return "persist-ordering";
    }

    const char*
    summary() const override
    {
        return "cache-line persist-state dataflow validates the "
               "flush-elision plan";
    }

    void
    run_function(const LintContext& ctx,
                 std::vector<Diagnostic>& out) const override
    {
        const persistency::PersistPlan plan =
            persistency::compute_persist_plan(ctx.fn, ctx.cfg, ctx.aa,
                                              ctx.part, ctx.info);
        std::vector<Diagnostic> diags =
            persistency::verify_persist_plan(ctx.fn, ctx.cfg, ctx.aa,
                                             ctx.part, ctx.info, plan);
        for (Diagnostic& d : diags)
            out.push_back(std::move(d));
    }
};

} // namespace

std::unique_ptr<LintPass>
make_persist_ordering_check()
{
    return std::make_unique<PersistOrderingCheck>();
}

} // namespace ido::compiler::lint
