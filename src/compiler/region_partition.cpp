#include "compiler/region_partition.h"

#include <algorithm>
#include <set>

#include "common/panic.h"

namespace ido::compiler {

uint32_t
RegionPartition::region_of(InstrRef pos) const
{
    uint32_t region = block_entry_region_[pos.block];
    for (const auto& [idx, r] : cuts_[pos.block]) {
        if (idx <= pos.index)
            region = r;
        else
            break;
    }
    return region;
}

bool
RegionPartition::is_region_start(InstrRef pos, uint32_t* region) const
{
    for (const auto& [idx, r] : cuts_[pos.block]) {
        if (idx == pos.index) {
            *region = r;
            return true;
        }
        if (idx > pos.index)
            break;
    }
    return false;
}

bool
RegionPartition::has_cut_in(uint32_t block, uint32_t lo,
                            uint32_t hi) const
{
    for (const auto& [idx, r] : cuts_[block]) {
        if (idx >= lo && idx <= hi)
            return true;
        if (idx > hi)
            break;
    }
    return false;
}

RegionPartitioner::RegionPartitioner(const Function& fn, const Cfg& cfg,
                                     const AliasAnalysis& aa)
    : fn_(fn), cfg_(cfg), aa_(aa)
{
}

RegionPartition
RegionPartitioner::run()
{
    const uint32_t nblocks = fn_.num_blocks();

    // Cut positions per block; index 0 means "block entry is a region
    // header".  std::set keeps them sorted and deduplicated.
    std::vector<std::set<uint32_t>> cuts(nblocks);
    uint32_t mandatory = 0;

    // --- 1. structural headers: entry, joins, loop headers -----------
    cuts[0].insert(0);
    for (uint32_t b = 0; b < nblocks; ++b) {
        if (!cfg_.reachable(b))
            continue;
        if (cfg_.predecessors(b).size() > 1 || cfg_.is_loop_header(b)) {
            if (cuts[b].insert(0).second)
                ++mandatory;
        }
    }

    // --- 2. lock-mandated boundaries ----------------------------------
    for (uint32_t b = 0; b < nblocks; ++b) {
        if (!cfg_.reachable(b))
            continue;
        const BasicBlock& bb = fn_.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            if (bb.instrs[i].op == Opcode::kLock
                && i + 1 < bb.instrs.size()) {
                if (cuts[b].insert(i + 1).second)
                    ++mandatory;
            }
            if (bb.instrs[i].op == Opcode::kUnlock) {
                if (cuts[b].insert(i).second)
                    ++mandatory;
            }
        }
    }

    // --- 2b. caller-forced cuts ----------------------------------------
    for (const InstrRef& f : forced_) {
        IDO_ASSERT(f.block < nblocks
                       && f.index < fn_.block(f.block).instrs.size(),
                   "forced cut (bb%u,%u) out of range", f.block,
                   f.index);
        cuts[f.block].insert(f.index);
    }

    // --- 3. antidependence cuts: greedy hitting set --------------------
    // Each pair is reduced to an interval of legal cut positions inside
    // one block; choosing points right-to-left-greedily per block is
    // the classic optimal strategy for interval point coverage.
    pairs_ = find_antidependences(fn_, cfg_, aa_);

    struct Interval
    {
        uint32_t block;
        uint32_t lo; ///< first legal cut index (inclusive)
        uint32_t hi; ///< last legal cut index (inclusive)
    };
    std::vector<Interval> intervals;
    for (const AntidepPair& p : pairs_) {
        // Register write-after-read needs no cut in the log-restore
        // model: recovery restores the whole register file from the
        // log's boundary snapshot, so re-execution always observes
        // region-entry register values (the analogue of the paper's
        // live-interval extension, which exists to protect the
        // per-physical-register log slots -- here each virtual value
        // owns a slot by construction).  Only memory inputs can be
        // destroyed in place.
        if (!p.is_memory)
            continue;
        if (p.first.block == p.second.block
            && p.first.index < p.second.index) {
            // Forward intra-block: any cut in (first, second].
            intervals.push_back(Interval{p.first.block,
                                         p.first.index + 1,
                                         p.second.index});
        } else {
            // Cross-block (or loop-carried): every path into the
            // clobber enters its block, so any cut in
            // [block entry, clobber] covers the pair.
            intervals.push_back(
                Interval{p.second.block, 0, p.second.index});
        }
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                  if (a.block != b.block)
                      return a.block < b.block;
                  return a.hi < b.hi;
              });
    uint32_t antidep_cuts = 0;
    for (const Interval& iv : intervals) {
        // Already covered by an existing (mandatory or chosen) cut?
        auto it = cuts[iv.block].lower_bound(iv.lo);
        if (it != cuts[iv.block].end() && *it <= iv.hi)
            continue;
        cuts[iv.block].insert(iv.hi);
        ++antidep_cuts;
    }

    // --- 4. materialize regions ----------------------------------------
    RegionPartition part;
    part.mandatory_cuts_ = mandatory;
    part.antidep_cuts_ = antidep_cuts;
    part.cuts_.resize(nblocks);
    for (uint32_t b = 0; b < nblocks; ++b) {
        if (!cfg_.reachable(b))
            continue;
        for (uint32_t idx : cuts[b])
            part.starts_.push_back(InstrRef{b, idx});
    }
    std::sort(part.starts_.begin(), part.starts_.end());
    for (uint32_t r = 0; r < part.starts_.size(); ++r) {
        const InstrRef s = part.starts_[r];
        part.cuts_[s.block].emplace_back(s.index, r);
    }

    // Region in effect at each block's entry: propagate in RPO; every
    // block without an entry cut has exactly one reachable predecessor
    // (joins are headers), so its entry region is the region at that
    // predecessor's end.
    part.block_entry_region_.assign(nblocks, 0);
    for (uint32_t b : cfg_.rpo()) {
        if (!part.cuts_[b].empty() && part.cuts_[b].front().first == 0) {
            part.block_entry_region_[b] = part.cuts_[b].front().second;
            continue;
        }
        IDO_ASSERT(cfg_.predecessors(b).size() <= 1,
                   "non-header block %u with multiple predecessors", b);
        if (cfg_.predecessors(b).empty()) {
            part.block_entry_region_[b] = 0;
            continue;
        }
        const uint32_t p = cfg_.predecessors(b)[0];
        // Region at the end of p = its last cut's region, or p's own
        // entry region if it has no cuts.
        uint32_t region = part.block_entry_region_[p];
        if (!part.cuts_[p].empty())
            region = part.cuts_[p].back().second;
        part.block_entry_region_[b] = region;
    }
    return part;
}

} // namespace ido::compiler
