#include "compiler/antidep.h"

namespace ido::compiler {

namespace {

/** Can execution flow from position p to position q (q strictly
 *  after p on some path)?  Same-block forward indexes count; otherwise
 *  any successor path from p's block reaching q's block counts
 *  (conservatively including loop paths). */
bool
flows_to(const Cfg& cfg, InstrRef p, InstrRef q)
{
    if (p.block == q.block && q.index > p.index)
        return true;
    // Leave p's block, then reach q's block.
    for (uint32_t s : cfg.successors(p.block)) {
        if (cfg.reaches(s, q.block))
            return true;
    }
    return false;
}

} // namespace

std::vector<AntidepPair>
find_antidependences(const Function& fn, const Cfg& cfg,
                     const AliasAnalysis& aa)
{
    std::vector<AntidepPair> pairs;

    // Gather reads and writes.
    struct Site
    {
        InstrRef ref;
        const Instr* ins;
    };
    std::vector<Site> loads, stores;
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock& bb = fn.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            const Instr& ins = bb.instrs[i];
            if (ins.is_load())
                loads.push_back({InstrRef{b, i}, &ins});
            else if (ins.is_store())
                stores.push_back({InstrRef{b, i}, &ins});
        }
    }

    // Memory antidependences.
    for (const Site& ld : loads) {
        for (const Site& st : stores) {
            if (aa.alias(*ld.ins, *st.ins) == AliasResult::kNoAlias)
                continue;
            if (flows_to(cfg, ld.ref, st.ref)) {
                pairs.push_back(
                    AntidepPair{ld.ref, st.ref, true, kNoReg});
            }
        }
    }

    // Register antidependences: use of r, later def of r.
    for (uint32_t b = 0; b < fn.num_blocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock& bb = fn.block(b);
        for (uint32_t i = 0; i < bb.instrs.size(); ++i) {
            const uint64_t uses = bb.instrs[i].uses();
            if (uses == 0)
                continue;
            for (uint32_t d_b = 0; d_b < fn.num_blocks(); ++d_b) {
                if (!cfg.reachable(d_b))
                    continue;
                const BasicBlock& db = fn.block(d_b);
                for (uint32_t d_i = 0; d_i < db.instrs.size(); ++d_i) {
                    const uint32_t def = db.instrs[d_i].def();
                    if (def == kNoReg || !(uses & (1ull << def)))
                        continue;
                    const InstrRef use_ref{b, i};
                    const InstrRef def_ref{d_b, d_i};
                    if (use_ref == def_ref)
                        continue; // x = f(x): read happens first
                    if (flows_to(cfg, use_ref, def_ref)) {
                        pairs.push_back(AntidepPair{use_ref, def_ref,
                                                    false, def});
                    }
                }
            }
        }
    }
    return pairs;
}

} // namespace ido::compiler
