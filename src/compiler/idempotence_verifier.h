/**
 * @file
 * Independent checker of the region partition (DESIGN.md invariant 1):
 * recomputes every antidependence pair and confirms a boundary
 * separates its two halves, and re-checks the lock-placement rules
 * (boundary after each acquire, before each release).  Kept separate
 * from the partitioner so a partitioner bug cannot vouch for itself.
 */
#pragma once

#include <string>
#include <vector>

#include "compiler/region_partition.h"

namespace ido::compiler {

struct VerifyResult
{
    bool ok = true;
    std::vector<std::string> violations;
};

VerifyResult verify_idempotence(const Function& fn, const Cfg& cfg,
                                const AliasAnalysis& aa,
                                const RegionPartition& part);

} // namespace ido::compiler
