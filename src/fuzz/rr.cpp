#include "fuzz/rr.h"

#include <array>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/panic.h"
#include "common/rng.h"
#include "runtime/crash_sim.h"

namespace ido::fuzz::rr {

namespace detail {
std::atomic<uint8_t> g_mode{0};
} // namespace detail

namespace {

/** One worker's log.  Slots are preallocated and appended with a
 *  release-store of the count, so a concurrent snapshot (panic path)
 *  reads a consistent prefix without locks. */
struct ThreadLog
{
    uint32_t tid = 0;
    std::vector<MemOp> ops;       ///< record: fixed capacity, index-assigned
    std::atomic<size_t> count{0}; ///< record: entries written
    size_t pos = 0;               ///< replay: next source entry to consume
    Rng chaos{0};
    bool overflowed = false;
};

struct Session
{
    uint64_t seed = 0;
    uint32_t chaos_pct = 0;
    size_t capacity = 0;
    bool recording_crashed = false;

    std::mutex reg_mutex;
    std::vector<std::unique_ptr<ThreadLog>> logs; ///< index = logical tid
    std::vector<std::vector<MemOp>> source;       ///< replay input

    std::atomic<bool> failed{false};
    std::mutex fail_mutex;
    std::string fail_reason;
};

Session g_session;

thread_local ThreadLog* t_log = nullptr;

/** Version counters, one per sync-object key, sharded for concurrent
 *  lookup-or-create.  Cell addresses are stable (heap-allocated), so
 *  replay waiters can spin on them without holding the shard mutex. */
struct VersionShard
{
    std::mutex m;
    std::unordered_map<uint64_t, std::unique_ptr<std::atomic<uint64_t>>>
        cells;
};

std::array<VersionShard, 64> g_versions;

/** Bumped by reset_versions; invalidates every thread's cell cache
 *  (cells are freed between sessions, so cached pointers go stale). */
std::atomic<uint64_t> g_version_generation{0};

std::atomic<uint64_t>*
version_cell_slow(uint64_t key)
{
    VersionShard& sh = g_versions[(key * 0x9e3779b97f4a7c15ull) >> 58];
    std::lock_guard<std::mutex> g(sh.m);
    auto& up = sh.cells[key];
    if (!up)
        up = std::make_unique<std::atomic<uint64_t>>(0);
    return up.get();
}

/**
 * Lookup-or-create with a thread-local memo on top: a sync-dense
 * workload hits the same few dozen keys (shadow shards, allocator
 * shards) millions of times, and the global shard mutex + hash lookup
 * was the dominant recording cost.
 */
std::atomic<uint64_t>*
version_cell(uint64_t key)
{
    struct Memo
    {
        uint64_t generation = ~uint64_t{0};
        std::unordered_map<uint64_t, std::atomic<uint64_t>*> cells;
    };
    thread_local Memo memo;
    const uint64_t gen =
        g_version_generation.load(std::memory_order_acquire);
    if (memo.generation != gen) {
        memo.cells.clear();
        memo.generation = gen;
    }
    auto it = memo.cells.find(key);
    if (it != memo.cells.end())
        return it->second;
    std::atomic<uint64_t>* cell = version_cell_slow(key);
    memo.cells.emplace(key, cell);
    return cell;
}

void
reset_versions()
{
    for (VersionShard& sh : g_versions) {
        std::lock_guard<std::mutex> g(sh.m);
        sh.cells.clear();
    }
    g_version_generation.fetch_add(1, std::memory_order_acq_rel);
}

/** Record-mode tick serialization (replay serializes by turn order). */
std::atomic<bool> g_tick_lock{false};

void
set_failed(const std::string& why)
{
    bool expected = false;
    if (g_session.failed.compare_exchange_strong(expected, true)) {
        std::lock_guard<std::mutex> g(g_session.fail_mutex);
        g_session.fail_reason = why;
        std::fprintf(stderr, "[ido-fuzz] rr session failed: %s\n",
                     why.c_str());
    }
}

std::string
key_str(uint64_t key)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s:%llu",
                  obj_kind_name(obj_key_kind(key)),
                  static_cast<unsigned long long>(obj_key_id(key)));
    return buf;
}

ThreadLog&
require_log(uint64_t key)
{
    ThreadLog* tl = t_log;
    if (tl == nullptr) {
        panic("ido-fuzz: sync op on %s from a thread with no "
              "rr::ThreadScope while record/replay is active -- every "
              "thread of the recorded phase must register a logical tid",
              key_str(key).c_str());
    }
    return *tl;
}

void
inject_chaos(ThreadLog& tl)
{
    if (g_session.chaos_pct == 0 || !tl.chaos.percent(g_session.chaos_pct))
        return;
    switch (tl.chaos.next_below(3)) {
      case 0:
        std::this_thread::yield();
        break;
      case 1:
        for (uint64_t i = tl.chaos.next_below(256); i > 0; --i) {
#if defined(__x86_64__)
            __builtin_ia32_pause();
#endif
        }
        break;
      default:
        for (uint64_t i = tl.chaos.next_below(4096); i > 0; --i) {
#if defined(__x86_64__)
            __builtin_ia32_pause();
#endif
        }
        break;
    }
}

void
record_append(ThreadLog& tl, uint64_t key, uint64_t version)
{
    const size_t n = tl.count.load(std::memory_order_relaxed);
    if (n >= tl.ops.size()) {
        if (!tl.overflowed) {
            tl.overflowed = true;
            set_failed("record log overflow on thread "
                       + std::to_string(tl.tid) + " (capacity "
                       + std::to_string(tl.ops.size())
                       + "); raise log_capacity");
        }
        return;
    }
    tl.ops[n] = MemOp{key, version};
    tl.count.store(n + 1, std::memory_order_release);
}

/** Replay: block until this thread's recorded turn on `key`.  Throws
 *  SimCrashException to unwind the worker on exhaustion/divergence. */
void
replay_wait_turn(ThreadLog& tl, uint64_t key)
{
    const std::vector<MemOp>& src = g_session.source[tl.tid];
    if (tl.pos >= src.size()) {
        // The recorded thread performed no further sync ops.  If the
        // recording ended in a crash it died at some un-logged point
        // past here; fail-stop this thread the same way.  A session
        // that already failed also unwinds (don't wait on a schedule
        // nobody is driving anymore).
        if (!g_session.recording_crashed
            && !g_session.failed.load(std::memory_order_relaxed)) {
            set_failed("replay ran past the recorded log on thread "
                       + std::to_string(tl.tid) + " (next op "
                       + key_str(key)
                       + "): stale artifact or unrecorded "
                         "nondeterminism");
        }
        throw rt::SimCrashException{};
    }
    const MemOp expect = src[tl.pos];
    if (expect.key != key) {
        set_failed("replay divergence on thread " + std::to_string(tl.tid)
                   + " at log index " + std::to_string(tl.pos)
                   + ": recorded " + key_str(expect.key) + " v"
                   + std::to_string(expect.version) + ", executing "
                   + key_str(key)
                   + " -- stale artifact or unrecorded nondeterminism");
        throw rt::SimCrashException{};
    }
    std::atomic<uint64_t>* cell = version_cell(key);
    uint64_t spins = 0;
    while (cell->load(std::memory_order_acquire) != expect.version) {
        if (g_session.failed.load(std::memory_order_relaxed))
            throw rt::SimCrashException{};
        if (++spins > (uint64_t{1} << 26)) {
            set_failed("replay stuck waiting for turn v"
                       + std::to_string(expect.version) + " on "
                       + key_str(key) + " (thread "
                       + std::to_string(tl.tid)
                       + "): stale artifact or unrecorded "
                         "nondeterminism");
            throw rt::SimCrashException{};
        }
        if ((spins & 0x3f) == 0) {
            std::this_thread::yield();
        } else {
#if defined(__x86_64__)
            __builtin_ia32_pause();
#endif
        }
    }
}

void
consume_and_bump(ThreadLog& tl, uint64_t key)
{
    ++tl.pos;
    // The turn holder is exclusive between wait and bump; a plain
    // store would do, but fetch_add keeps the invariant obvious.
    version_cell(key)->fetch_add(1, std::memory_order_acq_rel);
}

void
reset_session(uint64_t seed, uint32_t chaos_pct, size_t capacity)
{
    std::lock_guard<std::mutex> g(g_session.reg_mutex);
    g_session.seed = seed;
    g_session.chaos_pct = chaos_pct;
    g_session.capacity = capacity;
    g_session.recording_crashed = false;
    g_session.logs.clear();
    g_session.source.clear();
    g_session.failed.store(false, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> fg(g_session.fail_mutex);
        g_session.fail_reason.clear();
    }
    reset_versions();
    g_tick_lock.store(false, std::memory_order_relaxed);
}

} // namespace

// ---- detail slow paths -------------------------------------------------

namespace detail {

void
pre_slow(uint64_t key)
{
    ThreadLog& tl = require_log(key);
    if (mode() == RrMode::kRecord) {
        inject_chaos(tl);
        return;
    }
    replay_wait_turn(tl, key);
}

void
post_slow(uint64_t key)
{
    ThreadLog& tl = require_log(key);
    std::atomic<uint64_t>* cell = version_cell(key);
    if (mode() == RrMode::kRecord) {
        // Serialized by the object the caller holds.
        const uint64_t v = cell->load(std::memory_order_relaxed);
        record_append(tl, key, v);
        cell->store(v + 1, std::memory_order_release);
        return;
    }
    consume_and_bump(tl, key);
}

void
mutex_lock_slow(std::mutex& m, uint64_t key)
{
    pre_slow(key); // replay may throw -- before the lock, so no leak
    m.lock();
    post_slow(key);
}

} // namespace detail

// ---- session control ---------------------------------------------------

void
start_record(uint64_t seed, uint32_t chaos_pct, size_t log_capacity)
{
    IDO_ASSERT(mode() == RrMode::kOff,
               "start_record with an rr session already active");
    reset_session(seed, chaos_pct, log_capacity);
    detail::g_mode.store(static_cast<uint8_t>(RrMode::kRecord),
                         std::memory_order_release);
}

std::vector<std::vector<MemOp>>
stop_record()
{
    IDO_ASSERT(mode() == RrMode::kRecord, "stop_record while not recording");
    detail::g_mode.store(static_cast<uint8_t>(RrMode::kOff),
                         std::memory_order_release);
    std::lock_guard<std::mutex> g(g_session.reg_mutex);
    std::vector<std::vector<MemOp>> out(g_session.logs.size());
    for (size_t i = 0; i < g_session.logs.size(); ++i) {
        if (!g_session.logs[i])
            continue;
        ThreadLog& tl = *g_session.logs[i];
        const size_t n = tl.count.load(std::memory_order_acquire);
        out[i].assign(tl.ops.begin(),
                      tl.ops.begin() + static_cast<long>(n));
    }
    return out;
}

std::vector<std::vector<MemOp>>
snapshot_record_logs()
{
    std::lock_guard<std::mutex> g(g_session.reg_mutex);
    std::vector<std::vector<MemOp>> out(g_session.logs.size());
    for (size_t i = 0; i < g_session.logs.size(); ++i) {
        if (!g_session.logs[i])
            continue;
        ThreadLog& tl = *g_session.logs[i];
        const size_t n = tl.count.load(std::memory_order_acquire);
        out[i].assign(tl.ops.begin(),
                      tl.ops.begin() + static_cast<long>(n));
    }
    return out;
}

void
start_replay(const std::vector<std::vector<MemOp>>& logs,
             bool recording_crashed)
{
    IDO_ASSERT(mode() == RrMode::kOff,
               "start_replay with an rr session already active");
    reset_session(0, 0, 0);
    {
        std::lock_guard<std::mutex> g(g_session.reg_mutex);
        g_session.source = logs;
        g_session.recording_crashed = recording_crashed;
    }
    detail::g_mode.store(static_cast<uint8_t>(RrMode::kReplay),
                         std::memory_order_release);
}

std::vector<std::vector<MemOp>>
stop_replay()
{
    IDO_ASSERT(mode() == RrMode::kReplay, "stop_replay while not replaying");
    detail::g_mode.store(static_cast<uint8_t>(RrMode::kOff),
                         std::memory_order_release);
    std::lock_guard<std::mutex> g(g_session.reg_mutex);
    std::vector<std::vector<MemOp>> out(g_session.source.size());
    bool complete = true;
    for (size_t i = 0; i < g_session.source.size(); ++i) {
        size_t pos = 0;
        if (i < g_session.logs.size() && g_session.logs[i])
            pos = g_session.logs[i]->pos;
        out[i].assign(g_session.source[i].begin(),
                      g_session.source[i].begin() + static_cast<long>(pos));
        if (pos != g_session.source[i].size())
            complete = false;
    }
    if (!complete && !g_session.failed.load(std::memory_order_relaxed)) {
        set_failed("replay ended with unconsumed log entries: the "
                   "replayed run performed fewer sync ops than the "
                   "recording");
    }
    return out;
}

bool
failed()
{
    return g_session.failed.load(std::memory_order_acquire);
}

std::string
failure_reason()
{
    std::lock_guard<std::mutex> g(g_session.fail_mutex);
    return g_session.fail_reason;
}

// ---- ThreadScope -------------------------------------------------------

ThreadScope::ThreadScope(uint32_t logical_tid)
{
    if (!active())
        return;
    registered_ = true;
    std::lock_guard<std::mutex> g(g_session.reg_mutex);
    if (g_session.logs.size() <= logical_tid)
        g_session.logs.resize(logical_tid + 1);
    IDO_ASSERT(!g_session.logs[logical_tid],
               "duplicate rr logical tid registration");
    auto tl = std::make_unique<ThreadLog>();
    tl->tid = logical_tid;
    if (mode() == RrMode::kRecord) {
        tl->ops.resize(g_session.capacity);
        uint64_t sm = g_session.seed ^ 0xc4a05u;
        sm += uint64_t{logical_tid} * 0x9e3779b97f4a7c15ull;
        tl->chaos = Rng(splitmix64(sm));
    } else {
        IDO_ASSERT(logical_tid < g_session.source.size(),
                   "replay thread tid beyond the recorded log table");
    }
    t_log = tl.get();
    g_session.logs[logical_tid] = std::move(tl);
}

ThreadScope::~ThreadScope()
{
    if (registered_)
        t_log = nullptr;
}

// ---- TickSection -------------------------------------------------------

TickSection::TickSection()
{
    constexpr uint64_t key = obj_key(ObjKind::kTick, 0);
    ThreadLog& tl = require_log(key);
    if (mode() == RrMode::kRecord) {
        inject_chaos(tl);
        uint64_t spins = 0;
        while (g_tick_lock.exchange(true, std::memory_order_acquire)) {
            if ((++spins & 0x3f) == 0) {
                std::this_thread::yield();
            } else {
#if defined(__x86_64__)
                __builtin_ia32_pause();
#endif
            }
        }
        return;
    }
    replay_wait_turn(tl, key); // may throw: no entry appended, no lock held
}

TickSection::~TickSection()
{
    constexpr uint64_t key = obj_key(ObjKind::kTick, 0);
    ThreadLog* tl = t_log; // non-null: the constructor succeeded
    if (mode() == RrMode::kRecord) {
        std::atomic<uint64_t>* cell = version_cell(key);
        const uint64_t v = cell->load(std::memory_order_relaxed);
        record_append(*tl, key, v);
        cell->store(v + 1, std::memory_order_release);
        g_tick_lock.store(false, std::memory_order_release);
        return;
    }
    consume_and_bump(*tl, key);
}

} // namespace ido::fuzz::rr

namespace ido::fuzz {

const char*
obj_kind_name(ObjKind kind)
{
    switch (kind) {
      case ObjKind::kTick:
        return "tick";
      case ObjKind::kShadowShard:
        return "shadow_shard";
      case ObjKind::kHeapRefill:
        return "heap_refill";
      case ObjKind::kHeapShard:
        return "heap_shard";
      case ObjKind::kHeapLink:
        return "heap_link";
      case ObjKind::kHeapTc:
        return "heap_tc";
      case ObjKind::kFaseLock:
        return "fase_lock";
      case ObjKind::kScenario:
        return "scenario";
      case ObjKind::kNetBatch:
        return "net_batch";
    }
    return "?";
}

} // namespace ido::fuzz
