/**
 * @file
 * ido-fuzz record/replay core (mem-order / COREMU style).
 *
 * Multi-threaded crash tests are only as good as their reproducibility:
 * a failing interleaving found by randomized scheduling is gone forever
 * once the process exits.  This layer makes any simulated run bit-for-
 * bit reproducible by recording the *synchronization order* of the run
 * into lock-free per-thread logs and replaying it exactly.
 *
 * Model.  Every cross-thread ordering decision in the simulated world
 * is funneled through a small set of sync objects, each named by a
 * stable 64-bit key (obj_key): the 64 ShadowDomain shard mutexes, the
 * NvHeap refill/shard/link/tcache mutexes, each indirect-lock holder
 * slot (keyed by its heap *offset*, stable across runs), and the
 * CrashScheduler fuse (one global object, so the countdown order --
 * and therefore the crash point and the thread that burns the fuse --
 * is part of the recording).  Per object we keep a version counter:
 *
 *  - record: acquire the object natively, then append {key, version}
 *    to the calling thread's log and bump the version (serialized by
 *    the object itself, exactly the seqlock idiom of mem-order).
 *  - replay: before acquiring, spin until the object's version equals
 *    the recorded value -- i.e. wait for this thread's recorded turn --
 *    then acquire and bump.  Program order plus the per-object recorded
 *    total orders reconstruct the recorded happens-before relation, so
 *    the replayed waits-for graph is a subgraph of a real execution's
 *    and can never deadlock, provided every mutex whose critical
 *    section contains instrumented waits is itself instrumented (true
 *    for the set above; see DESIGN.md Sec. 14).
 *
 * Everything else that a run observes is derived state: persistent
 * values flow through ShadowDomain (shard-ordered), allocator metadata
 * through the NvHeap mutexes (ordered), workload choices through seeded
 * per-thread RNGs, and the crash-time line lottery through a pure hash
 * of (seed, line offset).  A thread that died mid-recording (fail-stop)
 * simply has a shorter log; in replay, exhausting a log of a crashed
 * recording kills the thread with SimCrashException at its next sync
 * attempt -- the same fail-stop semantics.
 *
 * The logs are lock-free on the hot path (preallocated slots + one
 * release-store of the count per append), so a panic handler can
 * snapshot them safely while worker threads are still running -- a
 * crashing fuzz sample leaves a usable .rec artifact behind.
 *
 * Cost when off: one relaxed load + branch per sync point.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ido::fuzz {

enum class RrMode : uint8_t
{
    kOff = 0,
    kRecord = 1,
    kReplay = 2,
};

/** Namespaces of the 64-bit sync-object key space. */
enum class ObjKind : uint8_t
{
    kTick = 1,        ///< the CrashScheduler fuse (one global object)
    kShadowShard,     ///< ShadowDomain shard mutex; id = shard index
    kHeapRefill,      ///< NvHeap global bump mutex
    kHeapShard,       ///< NvHeap free-list shard mutex; id = shard
    kHeapLink,        ///< NvHeap alloc_linked root mutex; id = RootSlot
    kHeapTc,          ///< NvHeap thread-cache registration mutex
    kFaseLock,        ///< indirect lock; id = holder slot heap offset
    kScenario,        ///< scripted regression scenarios (fuzz driver)
    kNetBatch,        ///< group-commit batch-close order (one global)
};

constexpr uint64_t
obj_key(ObjKind kind, uint64_t id = 0)
{
    return (static_cast<uint64_t>(kind) << 56) | (id & ((1ull << 56) - 1));
}

constexpr ObjKind
obj_key_kind(uint64_t key)
{
    return static_cast<ObjKind>(key >> 56);
}

constexpr uint64_t
obj_key_id(uint64_t key)
{
    return key & ((1ull << 56) - 1);
}

const char* obj_kind_name(ObjKind kind);

/** One recorded sync operation: the thread took `key`'s turn number
 *  `version`.  16 bytes, the unit of the .rec artifact's logs. */
struct MemOp
{
    uint64_t key;
    uint64_t version;
};

inline bool
operator==(const MemOp& a, const MemOp& b)
{
    return a.key == b.key && a.version == b.version;
}

namespace rr {

namespace detail {
extern std::atomic<uint8_t> g_mode;
void pre_slow(uint64_t key);
void post_slow(uint64_t key);
void mutex_lock_slow(std::mutex& m, uint64_t key);
} // namespace detail

inline RrMode
mode()
{
    return static_cast<RrMode>(
        detail::g_mode.load(std::memory_order_relaxed));
}

inline bool
active()
{
    return mode() != RrMode::kOff;
}

// ---- session control (fuzz driver / test side) -------------------------

/**
 * Begin recording.  All worker threads of the recorded phase must be
 * created after this call and register with ThreadScope; they must be
 * joined before stop_record().  `chaos_pct` is the per-sync-point
 * probability of a seeded schedule perturbation (yield or a short spin)
 * -- the fuzzer's interleaving-exploration knob; whatever schedule the
 * perturbation provokes is recorded, so it replays.  `log_capacity` is
 * per-thread (ops); overflowing it voids the session (failed()).
 */
void start_record(uint64_t seed, uint32_t chaos_pct,
                  size_t log_capacity = size_t{1} << 19);

/** End recording; returns per-logical-tid logs.  Threads must be joined. */
std::vector<std::vector<MemOp>> stop_record();

/**
 * Lock-free snapshot of the in-progress recording (panic-handler path:
 * safe against concurrently appending workers, may miss the very last
 * entries of a thread mid-append).
 */
std::vector<std::vector<MemOp>> snapshot_record_logs();

/**
 * Begin replay of previously recorded logs.  `recording_crashed` tells
 * exhaustion apart from divergence: when the recording ended in a
 * simulated crash, a thread that consumed its whole log dies with
 * SimCrashException at its next sync attempt (it died there in the
 * recording, at an un-logged point); otherwise running past the log is
 * a divergence.
 */
void start_replay(const std::vector<std::vector<MemOp>>& logs,
                  bool recording_crashed);

/**
 * End replay; returns the *consumed* per-thread log prefixes (the
 * replay-fidelity tests compare these against the recording).  Flags a
 * failure if the session neither failed nor consumed every log fully.
 */
std::vector<std::vector<MemOp>> stop_replay();

/** True once the session is void: replay divergence, a stuck replay
 *  wait, or a record-side log overflow. */
bool failed();

/** First failure description ("" if none). */
std::string failure_reason();

// ---- thread registration ----------------------------------------------

/**
 * Registers the calling thread under a stable logical tid (its index in
 * the artifact's log table).  Record and replay must use the same tid
 * for the same worker role.  No-op when rr is off, so worker loops can
 * register unconditionally.
 */
class ThreadScope
{
  public:
    explicit ThreadScope(uint32_t logical_tid);
    ~ThreadScope();

    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

  private:
    bool registered_ = false;
};

// ---- instrumentation points --------------------------------------------

/**
 * Before attempting to acquire sync object `key`.  Record: seeded chaos
 * perturbation only.  Replay: block until this thread's recorded turn;
 * throws SimCrashException on log exhaustion of a crashed recording and
 * on divergence (after flagging failed()).
 */
inline void
pre(uint64_t key)
{
    if (active()) [[unlikely]]
        detail::pre_slow(key);
}

/**
 * After acquiring `key` (the caller must hold the underlying object, so
 * the version access is serialized).  Record: append {key, version} to
 * the thread log and bump.  Replay: consume the log entry and bump.
 */
inline void
post(uint64_t key)
{
    if (active()) [[unlikely]]
        detail::post_slow(key);
}

/** Drop-in lock_guard replacement for instrumented std::mutex sites. */
class OrderedGuard
{
  public:
    OrderedGuard(std::mutex& m, uint64_t key) : m_(m)
    {
        if (!active()) [[likely]] {
            m_.lock();
            return;
        }
        detail::mutex_lock_slow(m_, key); // pre + lock + post
    }

    ~OrderedGuard() { m_.unlock(); }

    OrderedGuard(const OrderedGuard&) = delete;
    OrderedGuard& operator=(const OrderedGuard&) = delete;

  private:
    std::mutex& m_;
};

/**
 * RAII section making one CrashScheduler::tick a recorded sync op on
 * the global kTick object.  The constructor takes the turn (record: a
 * process-wide tick spinlock; replay: the recorded turn -- may throw);
 * the *destructor* appends/consumes the log entry, so it runs during
 * SimCrashException unwinding and the fatal tick itself is recorded.
 * Ticks are thus globally totally ordered, which makes the fuse
 * countdown -- and the identity of the thread that burns it -- exactly
 * reproducible.
 */
class TickSection
{
  public:
    TickSection();
    ~TickSection();

    TickSection(const TickSection&) = delete;
    TickSection& operator=(const TickSection&) = delete;
};

} // namespace rr
} // namespace ido::fuzz
