/**
 * @file
 * The .rec repro artifact: everything a failing fuzz sample needs to be
 * reproduced bit-for-bit in another process -- the case parameters
 * (workload, runtime, threads, ops, crash policy, fuse, chaos, seeds),
 * the recorded per-thread sync-order logs, and the observed outcome
 * (including heap-image hashes where the workload admits them).
 *
 * `ido_fuzz --replay <file>` re-runs the case under rr replay and
 * checks that the failure reproduces identically; failing samples from
 * a sweep are saved automatically, and curated ones live as regression
 * corpus entries under tests/corpus/ (replayed by the replay_corpus
 * ctest on every build).
 *
 * Format (fixed-width little-endian, no padding dependence):
 *   "IDOREC01" magic, a FuzzCase record, outcome fields, the failure
 *   reason string, then the per-thread MemOp logs.  The file is written
 *   in two stages by the driver: once right after recording (so a
 *   sample that panics during recovery/audit still leaves a usable
 *   artifact -- a panic hook re-writes it with logs snapshotted
 *   lock-free), and finalized with the outcome afterwards.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/rr.h"

namespace ido::nvm {
class PersistentHeap;
}

namespace ido::fuzz {

/** Workloads the fuzzer samples.  Values are part of the .rec format;
 *  append only. */
enum class WorkloadKind : uint32_t
{
    kDsStack = 0,
    kDsQueue = 1,
    kDsOrderedList = 2,
    kDsHashMap = 3,
    kHeapChurn = 4,    ///< direct NvHeap multi-thread alloc/free churn
    kPendingLine = 5,  ///< scripted ShadowDomain pending-line scenario
};

const char* workload_kind_name(WorkloadKind kind);

/** What a sample's post-crash recovery + audit concluded.  Values are
 *  part of the .rec format; append only. */
enum class Outcome : uint32_t
{
    kPending = 0,       ///< not yet finalized (artifact from a panic)
    kOk = 1,
    kInvariantFail = 2, ///< structure/allocator/GC audit failed
    kDivergence = 3,    ///< replay failed to follow the recording
    kLogOverflow = 4,   ///< recording voided (raise log capacity)
};

const char* outcome_name(Outcome outcome);

/** One point in the crash-point x interleaving x policy space. */
struct FuzzCase
{
    WorkloadKind workload = WorkloadKind::kDsStack;
    uint32_t runtime = 0;        ///< rt::RuntimeKind ordinal
    uint32_t threads = 2;
    uint64_t ops_per_thread = 256;
    uint32_t crash_policy = 0;   ///< nvm::CrashPolicy ordinal
    int64_t crash_fuse = -1;     ///< scheduler arm value; -1 = disarmed
    uint32_t chaos_pct = 0;      ///< record-side perturbation probability
    uint64_t seed = 1;           ///< case seed (workload RNG streams)
    uint64_t global_seed = 0;    ///< session seed active at record time
};

/** A recorded sample: case + what happened + the schedule that did it. */
struct Recording
{
    FuzzCase fc;
    bool crashed = false;              ///< the armed fuse fired
    Outcome outcome = Outcome::kPending;
    uint64_t hash_post_crash = 0;      ///< 0 = not applicable
    uint64_t hash_post_recovery = 0;   ///< 0 = not applicable
    std::string reason;                ///< failure detail ("" if none)
    std::vector<std::vector<MemOp>> logs;
};

/** FNV-1a over a byte range (image hashing, log digests). */
uint64_t fnv1a64(const void* data, size_t n,
                 uint64_t h = 0xcbf29ce484222325ull);

/** Hash of the heap's persistent image (arena_begin..size), i.e. the
 *  durable state a crash would leave behind.  Offset-stable: the bytes
 *  are offsets-not-pointers by construction (see persistent_heap.h),
 *  with the exception of transient lock-holder slots -- callers only
 *  compare hashes for workloads that do not take FASE locks. */
uint64_t hash_heap_image(const nvm::PersistentHeap& heap);

/** Serialize to path.  Returns false (with a warn) on I/O failure. */
bool save_recording(const std::string& path, const Recording& rec);

/** Deserialize; returns false on missing/corrupt/mismatched file. */
bool load_recording(const std::string& path, Recording* out);

} // namespace ido::fuzz
