#include "fuzz/artifact.h"

#include <cstdio>
#include <cstring>

#include "common/panic.h"
#include "nvm/persistent_heap.h"

namespace ido::fuzz {

namespace {

constexpr char kMagic[8] = {'I', 'D', 'O', 'R', 'E', 'C', '0', '1'};

// Fixed-width writers: the format must not depend on struct layout.
void
put_u32(std::FILE* f, uint32_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

void
put_u64(std::FILE* f, uint64_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

bool
get_u32(std::FILE* f, uint32_t* v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

bool
get_u64(std::FILE* f, uint64_t* v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

} // namespace

const char*
workload_kind_name(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::kDsStack:
        return "ds_stack";
      case WorkloadKind::kDsQueue:
        return "ds_queue";
      case WorkloadKind::kDsOrderedList:
        return "ds_orderedlist";
      case WorkloadKind::kDsHashMap:
        return "ds_hashmap";
      case WorkloadKind::kHeapChurn:
        return "heap_churn";
      case WorkloadKind::kPendingLine:
        return "pending_line";
    }
    return "?";
}

const char*
outcome_name(Outcome outcome)
{
    switch (outcome) {
      case Outcome::kPending:
        return "pending";
      case Outcome::kOk:
        return "ok";
      case Outcome::kInvariantFail:
        return "invariant_fail";
      case Outcome::kDivergence:
        return "divergence";
      case Outcome::kLogOverflow:
        return "log_overflow";
    }
    return "?";
}

uint64_t
fnv1a64(const void* data, size_t n, uint64_t h)
{
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
hash_heap_image(const nvm::PersistentHeap& heap)
{
    const auto* base = static_cast<const uint8_t*>(heap.base());
    const uint64_t begin = heap.arena_begin();
    return fnv1a64(base + begin, heap.size() - begin);
}

bool
save_recording(const std::string& path, const Recording& rec)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        warn("ido-fuzz: cannot write artifact %s", path.c_str());
        return false;
    }
    std::fwrite(kMagic, sizeof(kMagic), 1, f);
    put_u32(f, static_cast<uint32_t>(rec.fc.workload));
    put_u32(f, rec.fc.runtime);
    put_u32(f, rec.fc.threads);
    put_u64(f, rec.fc.ops_per_thread);
    put_u32(f, rec.fc.crash_policy);
    put_u64(f, static_cast<uint64_t>(rec.fc.crash_fuse));
    put_u32(f, rec.fc.chaos_pct);
    put_u64(f, rec.fc.seed);
    put_u64(f, rec.fc.global_seed);
    put_u32(f, rec.crashed ? 1 : 0);
    put_u32(f, static_cast<uint32_t>(rec.outcome));
    put_u64(f, rec.hash_post_crash);
    put_u64(f, rec.hash_post_recovery);
    put_u32(f, static_cast<uint32_t>(rec.reason.size()));
    std::fwrite(rec.reason.data(), 1, rec.reason.size(), f);
    put_u32(f, static_cast<uint32_t>(rec.logs.size()));
    for (const auto& log : rec.logs) {
        put_u64(f, log.size());
        for (const MemOp& op : log) {
            put_u64(f, op.key);
            put_u64(f, op.version);
        }
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        warn("ido-fuzz: short write on artifact %s", path.c_str());
    return ok;
}

bool
load_recording(const std::string& path, Recording* out)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    bool ok = false;
    char magic[8];
    uint32_t workload = 0, crashed = 0, outcome = 0, reason_len = 0;
    uint32_t nlogs = 0;
    uint64_t fuse = 0;
    do {
        if (std::fread(magic, sizeof(magic), 1, f) != 1
            || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
            break;
        if (!get_u32(f, &workload) || !get_u32(f, &out->fc.runtime)
            || !get_u32(f, &out->fc.threads)
            || !get_u64(f, &out->fc.ops_per_thread)
            || !get_u32(f, &out->fc.crash_policy) || !get_u64(f, &fuse)
            || !get_u32(f, &out->fc.chaos_pct) || !get_u64(f, &out->fc.seed)
            || !get_u64(f, &out->fc.global_seed) || !get_u32(f, &crashed)
            || !get_u32(f, &outcome) || !get_u64(f, &out->hash_post_crash)
            || !get_u64(f, &out->hash_post_recovery)
            || !get_u32(f, &reason_len))
            break;
        out->fc.workload = static_cast<WorkloadKind>(workload);
        out->fc.crash_fuse = static_cast<int64_t>(fuse);
        out->crashed = crashed != 0;
        out->outcome = static_cast<Outcome>(outcome);
        if (reason_len > (1u << 20))
            break;
        out->reason.resize(reason_len);
        if (reason_len != 0
            && std::fread(out->reason.data(), 1, reason_len, f)
                   != reason_len)
            break;
        if (!get_u32(f, &nlogs) || nlogs > (1u << 16))
            break;
        out->logs.assign(nlogs, {});
        bool logs_ok = true;
        for (uint32_t i = 0; i < nlogs && logs_ok; ++i) {
            uint64_t count = 0;
            if (!get_u64(f, &count) || count > (uint64_t{1} << 28)) {
                logs_ok = false;
                break;
            }
            out->logs[i].resize(count);
            for (uint64_t j = 0; j < count; ++j) {
                if (!get_u64(f, &out->logs[i][j].key)
                    || !get_u64(f, &out->logs[i][j].version)) {
                    logs_ok = false;
                    break;
                }
            }
        }
        ok = logs_ok;
    } while (false);
    std::fclose(f);
    return ok;
}

} // namespace ido::fuzz
