#include "fuzz/fuzz_driver.h"

#include <atomic>
#include <cstdio>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>

#include "baselines/runtime_factory.h"
#include "common/panic.h"
#include "common/rng.h"
#include "ds/workload.h"
#include "nvm/heap_gc.h"
#include "nvm/nv_heap.h"
#include "nvm/persistent_heap.h"
#include "nvm/root_registry.h"
#include "nvm/shadow_domain.h"
#include "runtime/crash_sim.h"

namespace ido::fuzz {

namespace {

constexpr size_t kWorldHeapBytes = 32u << 20;
constexpr uint64_t kPendingLineStamp = 0xA11CE5EEDull;

// ---- panic artifact ---------------------------------------------------

struct PanicCtx
{
    std::mutex m;
    bool armed = false;
    FuzzCase fc;
    std::string path;
};

PanicCtx g_panic_ctx;

void
panic_artifact_hook()
{
    // Best effort from a dying process: other threads may still be
    // appending, which the lock-free log snapshot tolerates.
    std::lock_guard<std::mutex> g(g_panic_ctx.m);
    if (!g_panic_ctx.armed)
        return;
    Recording rec;
    rec.fc = g_panic_ctx.fc;
    rec.outcome = Outcome::kPending;
    rec.reason = "panic during sample (see stderr for the panic message)";
    rec.logs = rr::snapshot_record_logs();
    if (save_recording(g_panic_ctx.path, rec)) {
        std::fprintf(stderr,
                     "[ido-fuzz] panic: repro artifact written to %s\n",
                     g_panic_ctx.path.c_str());
    }
}

// ---- the simulated world ----------------------------------------------

struct World
{
    explicit World(const FuzzCase& fc)
        : heap({.size = kWorldHeapBytes}),
          shadow(heap.base(), heap.size(), fc.seed)
    {
    }

    void
    make_runtime(const FuzzCase& fc)
    {
        rt::RuntimeConfig cfg;
        cfg.check_contracts = true;
        runtime = baselines::make_runtime(
            static_cast<baselines::RuntimeKind>(fc.runtime), heap, shadow,
            cfg);
    }

    nvm::PersistentHeap heap;
    nvm::ShadowDomain shadow;
    std::unique_ptr<rt::Runtime> runtime;
};

bool
is_ds_workload(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::kDsStack:
      case WorkloadKind::kDsQueue:
      case WorkloadKind::kDsOrderedList:
      case WorkloadKind::kDsHashMap:
        return true;
      default:
        return false;
    }
}

ds::DsKind
ds_kind_of(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::kDsQueue:
        return ds::DsKind::kQueue;
      case WorkloadKind::kDsOrderedList:
        return ds::DsKind::kOrderedList;
      case WorkloadKind::kDsHashMap:
        return ds::DsKind::kHashMap;
      default:
        return ds::DsKind::kStack;
    }
}

ds::WorkloadConfig
workload_config_of(const FuzzCase& fc)
{
    ds::WorkloadConfig cfg;
    cfg.ds = ds_kind_of(fc.workload);
    cfg.threads = fc.threads;
    cfg.ops_per_thread = fc.ops_per_thread; // count mode: deterministic
    cfg.seed = fc.seed;
    cfg.key_range = 256;
    cfg.remove_pct = 20;
    cfg.get_pct = 30;
    return cfg;
}

/** Image hashes are only meaningful when the workload takes no FASE
 *  locks: lock-holder slots persist raw transient pointers, which
 *  differ across address spaces even on a faithful replay. */
bool
hashes_image(WorkloadKind kind)
{
    return kind == WorkloadKind::kHeapChurn
           || kind == WorkloadKind::kPendingLine;
}

/** First line-aligned arena offset: the scripted scenario's target. */
uint64_t
pending_line_off(const nvm::PersistentHeap& heap)
{
    return (heap.arena_begin() + 63) & ~uint64_t{63};
}

// ---- workload bodies (run under rr record or replay) -------------------

void
run_ds_phase(World& w, const FuzzCase& fc, uint64_t root)
{
    ds::workload_run(*w.runtime, root, workload_config_of(fc));
}

void
churn_worker(World& w, const FuzzCase& fc, uint32_t tid)
{
    rr::ThreadScope scope(tid);
    Rng rng(mix_seed(fc.seed * 1009 + 7919ull * tid));
    std::vector<uint64_t> mine;
    nvm::NvHeap& alloc = w.runtime->allocator();
    rt::CrashScheduler& sched = w.runtime->crash_scheduler();
    try {
        for (uint64_t i = 0; i < fc.ops_per_thread; ++i) {
            sched.tick(); // one crash opportunity per churn op
            if (mine.empty() || rng.percent(55)) {
                const size_t n = 8 + rng.next_below(300);
                const uint64_t off = alloc.alloc(n, w.shadow);
                if (off == 0)
                    continue; // arena exhausted: keep churning frees
                uint64_t stamp = off * 0x9e3779b97f4a7c15ull + tid;
                void* p = w.heap.resolve<void>(off);
                w.shadow.store(p, &stamp, sizeof(stamp));
                w.shadow.flush(p, sizeof(stamp));
                w.shadow.fence();
                mine.push_back(off);
            } else {
                const size_t vi = rng.next_below(mine.size());
                const uint64_t off = mine[vi];
                mine[vi] = mine.back();
                mine.pop_back();
                alloc.free_block(off, w.shadow);
            }
        }
    } catch (const rt::SimCrashException&) {
        // Fail-stop: abandon everything this thread held.
    }
}

void
run_churn_phase(World& w, const FuzzCase& fc)
{
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < fc.threads; ++t)
        threads.emplace_back([&w, &fc, t] { churn_worker(w, fc, t); });
    for (auto& t : threads)
        t.join();
}

/**
 * The seed's pending-line bug as a deterministic two-thread script:
 * T0 stores A into a line and flushes it; T1 then stores B into the
 * *same* line (re-dirtying it while T0's write-back is in flight); T0
 * fences; the world crashes with kDropAll.  A is flushed+fenced, so it
 * must survive any crash -- the buggy seed ShadowDomain resolved the
 * in-flight write-back with a coin flip and could lose it.  The step
 * gating below enforces the interleaving on the recording run; replay
 * then reproduces it from the log alone.
 */
void
run_pending_line_phase(World& w)
{
    const uint64_t off = pending_line_off(w.heap);
    auto* line = w.heap.resolve<uint8_t>(off);
    std::atomic<int> step{0};
    std::thread t0([&] {
        rr::ThreadScope scope(0);
        try {
            uint64_t a = kPendingLineStamp;
            w.shadow.store(line, &a, sizeof(a));
            w.shadow.flush(line, sizeof(a));
            step.store(1, std::memory_order_release);
            while (step.load(std::memory_order_acquire) != 2)
                std::this_thread::yield();
            w.shadow.fence();
        } catch (const rt::SimCrashException&) {
            step.store(2, std::memory_order_release); // unblock peer
        }
    });
    std::thread t1([&] {
        rr::ThreadScope scope(1);
        try {
            while (step.load(std::memory_order_acquire) != 1)
                std::this_thread::yield();
            uint64_t b = 0xB0B5B0B5ull;
            w.shadow.store(line + 8, &b, sizeof(b));
            step.store(2, std::memory_order_release);
        } catch (const rt::SimCrashException&) {
            step.store(2, std::memory_order_release);
        }
    });
    t0.join();
    t1.join();
}

// ---- record/replay-shared sample execution -----------------------------

/** Everything after the workload phase: crash resolution, recovery,
 *  audit.  Runs with rr off; deterministic given the heap image, the
 *  case, and whether the fuse fired. */
void
finish_sample(World& w, const FuzzCase& fc, uint64_t root, bool crashed,
              Recording& rec)
{
    const bool with_runtime = fc.workload != WorkloadKind::kPendingLine;
    if (crashed) {
        w.shadow.crash(static_cast<nvm::CrashPolicy>(fc.crash_policy));
        if (hashes_image(fc.workload))
            rec.hash_post_crash = hash_heap_image(w.heap);
        if (with_runtime) {
            w.make_runtime(fc); // fresh scheduler, new lock epoch
            if (w.runtime->supports_recovery())
                w.runtime->recover();
        }
        w.shadow.drain_all();
    } else {
        if (with_runtime)
            w.runtime->crash_scheduler().disarm();
        w.shadow.drain_all(); // clean shutdown: everything durable
        if (hashes_image(fc.workload))
            rec.hash_post_crash = hash_heap_image(w.heap);
    }
    if (hashes_image(fc.workload))
        rec.hash_post_recovery = hash_heap_image(w.heap);

    // Audit.  Post-crash leaks are legal (recover_leaks reclaims them
    // lazily); dangling links and allocator-walk violations are not.
    std::string reason;
    bool ok = true;
    if (with_runtime) {
        if (!w.runtime->allocator().check_consistency()) {
            ok = false;
            reason = "allocator consistency walk failed";
        }
        nvm::HeapGc gc(w.runtime->allocator(), w.shadow);
        const nvm::GcStats stats = gc.audit();
        if (stats.dangling_links != 0) {
            ok = false;
            reason = "gc audit: " + std::to_string(stats.dangling_links)
                     + " dangling links";
            if (!stats.findings.empty())
                reason += " (" + stats.findings.front() + ")";
        }
    }
    if (is_ds_workload(fc.workload)
        && !ds::workload_check_invariants(w.heap, ds_kind_of(fc.workload),
                                          root)) {
        ok = false;
        reason = std::string(workload_kind_name(fc.workload))
                 + " structural invariants violated";
    }
    if (fc.workload == WorkloadKind::kPendingLine) {
        uint64_t got = 0;
        w.shadow.load(w.heap.resolve<void>(pending_line_off(w.heap)), &got,
                      sizeof(got));
        if (got != kPendingLineStamp) {
            ok = false;
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "flushed+fenced value lost: got %#llx",
                          static_cast<unsigned long long>(got));
            reason = buf;
        }
    }
    rec.crashed = crashed;
    rec.outcome = ok ? Outcome::kOk : Outcome::kInvariantFail;
    rec.reason = reason;
}

/** Setup phase (rr off, deterministic): build the world and structure.
 *  Returns the ds root (0 for non-ds workloads). */
uint64_t
setup_sample(World& w, const FuzzCase& fc)
{
    if (fc.workload == WorkloadKind::kPendingLine)
        return 0; // raw ShadowDomain scenario: no runtime, no allocator
    w.make_runtime(fc);
    if (!is_ds_workload(fc.workload))
        return 0;
    const uint64_t root =
        ds::workload_setup(*w.runtime, workload_config_of(fc));
    // Publish the structure as the GC's app root so the reachability
    // audit actually traces it (creates don't register roots).
    if (root != 0)
        nvm::RootRegistry::set_ref(w.heap, nvm::RootSlot::kAppRoot, root,
                                   w.shadow);
    return root;
}

void
run_workload_phase(World& w, const FuzzCase& fc, uint64_t root)
{
    if (fc.crash_fuse >= 0 && fc.workload != WorkloadKind::kPendingLine)
        w.runtime->crash_scheduler().arm(fc.crash_fuse);
    switch (fc.workload) {
      case WorkloadKind::kHeapChurn:
        run_churn_phase(w, fc);
        break;
      case WorkloadKind::kPendingLine:
        run_pending_line_phase(w);
        break;
      default:
        run_ds_phase(w, fc, root);
        break;
    }
}

bool
sample_crashed(World& w, const FuzzCase& fc)
{
    // The scripted scenario is *defined* by its driver-initiated crash;
    // everything else crashes iff the armed fuse fired.
    if (fc.workload == WorkloadKind::kPendingLine)
        return true;
    return w.runtime->crash_scheduler().crashed();
}

/** Save/restore the process seed around a sample: cases pin their own
 *  session seed without perturbing the host test binary's streams. */
class SeedScope
{
  public:
    explicit SeedScope(uint64_t seed) : saved_(global_seed())
    {
        set_global_seed(seed);
    }
    ~SeedScope() { set_global_seed(saved_); }

  private:
    uint64_t saved_;
};

} // namespace

void
arm_panic_artifact(const FuzzCase& fc, const std::string& path)
{
    std::lock_guard<std::mutex> g(g_panic_ctx.m);
    g_panic_ctx.armed = true;
    g_panic_ctx.fc = fc;
    g_panic_ctx.path = path;
    set_panic_hook(&panic_artifact_hook);
}

void
disarm_panic_artifact()
{
    std::lock_guard<std::mutex> g(g_panic_ctx.m);
    g_panic_ctx.armed = false;
    set_panic_hook(nullptr);
}

Recording
run_case_record(const FuzzCase& fc_in)
{
    FuzzCase fc = fc_in;
    if (fc.global_seed == 0)
        fc.global_seed = global_seed();
    SeedScope seed_scope(fc.global_seed);

    Recording rec;
    rec.fc = fc;
    World w(fc);
    const uint64_t root = setup_sample(w, fc);
    w.shadow.drain_all(); // workload phase starts from a durable image

    rr::start_record(fc.seed, fc.chaos_pct);
    run_workload_phase(w, fc, root);
    const bool crashed = sample_crashed(w, fc);
    rec.logs = rr::stop_record();
    if (rr::failed()) {
        rec.crashed = crashed;
        rec.outcome = Outcome::kLogOverflow;
        rec.reason = rr::failure_reason();
        return rec;
    }
    finish_sample(w, fc, root, crashed, rec);
    return rec;
}

Recording
run_case_replay(const Recording& source)
{
    const FuzzCase& fc = source.fc;
    SeedScope seed_scope(fc.global_seed);

    Recording rec;
    rec.fc = fc;
    World w(fc);
    const uint64_t root = setup_sample(w, fc);
    w.shadow.drain_all();

    rr::start_replay(source.logs, source.crashed);
    run_workload_phase(w, fc, root);
    const bool crashed = sample_crashed(w, fc);
    rec.logs = rr::stop_replay(); // consumed prefixes
    if (rr::failed()) {
        rec.crashed = crashed;
        rec.outcome = Outcome::kDivergence;
        rec.reason = rr::failure_reason();
        return rec;
    }
    finish_sample(w, fc, root, crashed, rec);
    return rec;
}

bool
logs_equal(const std::vector<std::vector<MemOp>>& a,
           const std::vector<std::vector<MemOp>>& b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i])
            return false;
    }
    return true;
}

bool
replay_matches(const Recording& source, const Recording& replayed,
               std::string* why)
{
    auto fail = [why](const std::string& s) {
        if (why != nullptr)
            *why = s;
        return false;
    };
    if (replayed.outcome == Outcome::kDivergence)
        return fail("schedule divergence: " + replayed.reason);
    if (replayed.crashed != source.crashed)
        return fail(source.crashed ? "recorded crash did not fire"
                                   : "spurious crash on replay");
    if (replayed.outcome != source.outcome)
        return fail(std::string("outcome ") + outcome_name(replayed.outcome)
                    + " != recorded " + outcome_name(source.outcome));
    if (replayed.hash_post_crash != source.hash_post_crash)
        return fail("post-crash image hash differs");
    if (replayed.hash_post_recovery != source.hash_post_recovery)
        return fail("post-recovery image hash differs");
    if (!logs_equal(source.logs, replayed.logs))
        return fail("replay consumed a different sync-op sequence");
    return true;
}

Recording
record_pending_line_case(uint64_t seed)
{
    FuzzCase fc;
    fc.workload = WorkloadKind::kPendingLine;
    fc.runtime = static_cast<uint32_t>(baselines::RuntimeKind::kIdo);
    fc.threads = 2;
    fc.ops_per_thread = 0;
    fc.crash_policy = static_cast<uint32_t>(nvm::CrashPolicy::kDropAll);
    fc.crash_fuse = -1;
    fc.chaos_pct = 0;
    fc.seed = seed;
    // The scripted interleaving always crashes (that is the scenario);
    // the fuse stays disarmed because the crash is driver-initiated.
    return run_case_record(fc);
}

SweepResult
fuzz_sweep(const SweepOptions& opts)
{
    static const WorkloadKind kSweepWorkloads[] = {
        WorkloadKind::kDsStack,    WorkloadKind::kDsQueue,
        WorkloadKind::kDsOrderedList, WorkloadKind::kDsHashMap,
        WorkloadKind::kHeapChurn,
    };
    std::vector<uint32_t> runtimes = opts.runtimes;
    if (runtimes.empty())
        runtimes.push_back(
            static_cast<uint32_t>(baselines::RuntimeKind::kIdo));

    SweepResult result;
    uint64_t sm = opts.master_seed ^ 0x5eedf00dull;
    for (uint32_t i = 0; i < opts.runs; ++i) {
        FuzzCase fc;
        fc.workload = kSweepWorkloads[splitmix64(sm)
                                      % std::size(kSweepWorkloads)];
        fc.runtime = runtimes[i % runtimes.size()];
        fc.threads = 2 + static_cast<uint32_t>(splitmix64(sm) % 7);
        fc.ops_per_thread = 64 + splitmix64(sm) % 512;
        fc.crash_policy = static_cast<uint32_t>(splitmix64(sm) % 3);
        const uint64_t budget = fc.threads * fc.ops_per_thread;
        // 1 in 8 samples runs crash-free (pure interleaving search);
        // the rest arm the fuse somewhere in the op budget.
        fc.crash_fuse = (splitmix64(sm) % 8 == 0)
            ? -1
            : static_cast<int64_t>(1 + splitmix64(sm) % (budget * 2));
        static const uint32_t kChaos[] = {0, 5, 15, 40};
        fc.chaos_pct = kChaos[splitmix64(sm) % std::size(kChaos)];
        fc.seed = splitmix64(sm);
        fc.global_seed = global_seed();

        const std::string artifact_path = opts.out_dir + "/fuzz_fail_"
                                          + std::to_string(i) + ".rec";
        arm_panic_artifact(fc, artifact_path);
        Recording rec = run_case_record(fc);
        disarm_panic_artifact();

        result.total += 1;
        if (rec.crashed)
            result.crashed += 1;
        if (opts.verbose) {
            std::fprintf(
                stderr,
                "[ido-fuzz] #%u %s/%s threads=%u ops=%llu policy=%u "
                "fuse=%lld chaos=%u -> %s%s%s\n",
                i, workload_kind_name(fc.workload),
                baselines::runtime_kind_name(
                    static_cast<baselines::RuntimeKind>(fc.runtime)),
                fc.threads,
                static_cast<unsigned long long>(fc.ops_per_thread),
                fc.crash_policy, static_cast<long long>(fc.crash_fuse),
                fc.chaos_pct, outcome_name(rec.outcome),
                rec.crashed ? " (crashed)" : "",
                rec.reason.empty() ? "" : (" -- " + rec.reason).c_str());
        }
        if (rec.outcome != Outcome::kOk) {
            result.failures += 1;
            if (save_recording(artifact_path, rec)) {
                result.artifacts.push_back(artifact_path);
                std::fprintf(stderr,
                             "[ido-fuzz] sample #%u FAILED (%s: %s) -- "
                             "artifact: %s\n",
                             i, outcome_name(rec.outcome),
                             rec.reason.c_str(), artifact_path.c_str());
            }
        }
    }
    return result;
}

} // namespace ido::fuzz
