/**
 * @file
 * ido-fuzz driver: systematic exploration of the crash-point x
 * interleaving x CrashPolicy space, one sample at a time.
 *
 * A sample is a FuzzCase.  run_case_record() executes it under rr
 * recording: build a fresh world (anonymous PersistentHeap +
 * ShadowDomain + runtime), run the workload with seeded schedule
 * perturbation and (optionally) a CrashScheduler fuse armed at the
 * chosen opportunity index, then simulate the crash, run the runtime's
 * recovery, and audit -- allocator consistency walk, HeapGc
 * reachability census, per-structure invariant checkers.  The result
 * is a Recording: the case, its outcome, heap-image hashes (for
 * workloads that admit them), and the per-thread sync-order logs that
 * make the whole run reproducible.
 *
 * run_case_replay() re-executes a Recording under rr replay and
 * re-audits; a correct implementation reproduces the identical outcome
 * (same crash, same hashes, same verdict) on every replay, which is
 * exactly what the replay_corpus regression test asserts 10x per
 * checked-in artifact.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/artifact.h"

namespace ido::fuzz {

/** Record one sample from scratch.  Never throws; outcome/reason carry
 *  the verdict. */
Recording run_case_record(const FuzzCase& fc);

/** Replay a recording and re-audit.  The returned Recording holds the
 *  *replayed* run's outcome, hashes, and consumed log prefixes; on a
 *  schedule divergence the outcome is kDivergence. */
Recording run_case_replay(const Recording& source);

/** True when the replayed run reproduced the source bit-for-bit:
 *  same crash fate, same outcome, same image hashes, logs fully
 *  consumed.  `why` (optional) receives the first difference. */
bool replay_matches(const Recording& source, const Recording& replayed,
                    std::string* why = nullptr);

bool logs_equal(const std::vector<std::vector<MemOp>>& a,
                const std::vector<std::vector<MemOp>>& b);

/**
 * While armed, a panic anywhere in the process (e.g. an allocator
 * forensics panic during a sample's audit) writes a best-effort .rec
 * artifact for the in-flight case before aborting, snapshotting the
 * record logs lock-free if recording is still live.  Disarm after the
 * sample completes.
 */
void arm_panic_artifact(const FuzzCase& fc, const std::string& path);
void disarm_panic_artifact();

/** The scripted regression scenario encoding the seed's ShadowDomain
 *  pending-line bug (store . flush . cross-thread same-line store .
 *  fence . kDropAll crash: the flushed value must survive). */
Recording record_pending_line_case(uint64_t seed);

struct SweepOptions
{
    uint64_t master_seed = 1;
    uint32_t runs = 50;
    std::string out_dir = ".";      ///< failing .rec artifacts land here
    std::vector<uint32_t> runtimes; ///< RuntimeKind ordinals; empty = iDO
    bool verbose = false;
};

struct SweepResult
{
    uint32_t total = 0;
    uint32_t crashed = 0;  ///< samples whose armed fuse fired
    uint32_t failures = 0; ///< samples with outcome != kOk
    std::vector<std::string> artifacts; ///< saved failing artifacts
};

/** Seeded sweep over cases derived from master_seed; saves an artifact
 *  per failing sample. */
SweepResult fuzz_sweep(const SweepOptions& opts);

} // namespace ido::fuzz
