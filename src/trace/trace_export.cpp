#include "trace/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "baselines/runtime_factory.h"
#include "common/json.h"
#include "ido/ido_log.h"
#include "runtime/fase_program.h"

namespace ido::trace {

namespace {

constexpr uint64_t kMagic = 0x45434152544f4449ull; // "IDOTRACE" LE

// ---------------------------------------------------------------------
// Binary reader
// ---------------------------------------------------------------------

struct ByteReader
{
    const uint8_t* p;
    const uint8_t* end;
    bool ok = true;

    bool
    take(void* dst, size_t n)
    {
        if (!ok || static_cast<size_t>(end - p) < n) {
            ok = false;
            return false;
        }
        std::memcpy(dst, p, n);
        p += n;
        return true;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        take(&v, sizeof(v));
        return v;
    }

    std::string
    strz()
    {
        std::string s;
        while (ok && p < end && *p != 0)
            s.push_back(static_cast<char>(*p++));
        if (p >= end)
            ok = false;
        else
            ++p; // skip NUL
        return s;
    }
};

std::string
pc_name(const TraceFile& tf, uint64_t pc)
{
    char buf[96];
    const uint32_t fase = recovery_pc_fase(pc);
    const uint32_t region = recovery_pc_region(pc);
    auto it = tf.fases.find(fase);
    if (it == tf.fases.end()) {
        std::snprintf(buf, sizeof buf, "fase%u/r%u", fase, region);
        return buf;
    }
    if (region < it->second.regions.size()) {
        std::snprintf(buf, sizeof buf, "%s/%s", it->second.name.c_str(),
                      it->second.regions[region].c_str());
        return buf;
    }
    std::snprintf(buf, sizeof buf, "%s/r%u", it->second.name.c_str(),
                  region);
    return buf;
}

std::string
fase_name(const TraceFile& tf, uint64_t fase_id)
{
    auto it = tf.fases.find(static_cast<uint32_t>(fase_id));
    if (it != tf.fases.end())
        return it->second.name;
    char buf[32];
    std::snprintf(buf, sizeof buf, "fase%" PRIu64, fase_id);
    return buf;
}

/** Display label for one event, using the FASE name table. */
std::string
event_label(const TraceFile& tf, const TraceRecord& r)
{
    const auto kind = static_cast<EventKind>(r.kind);
    switch (kind) {
      case EventKind::kFaseBegin:
      case EventKind::kFaseEnd:
        return fase_name(tf, r.a0);
      case EventKind::kFaseResume:
        return "resume " + pc_name(tf, r.a0);
      case EventKind::kRegionBegin:
      case EventKind::kRegionEnd:
        return pc_name(tf, r.a0);
      case EventKind::kRecoverResumeBegin:
      case EventKind::kRecoverResumeEnd:
        return "recovery.resume " + pc_name(tf, r.a0);
      case EventKind::kRecoveryBegin:
      case EventKind::kRecoveryEnd:
        return std::string("recovery ")
            + baselines::runtime_kind_name(
                static_cast<baselines::RuntimeKind>(r.a0));
      case EventKind::kRecoverLocksBegin:
      case EventKind::kRecoverLocksEnd:
        return "recovery.locks";
      default:
        return event_kind_name(kind);
    }
}

struct SpanStats
{
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t min_ns = UINT64_MAX;
    uint64_t max_ns = 0;
    uint64_t flushes = 0;
    uint64_t fences = 0;
    uint64_t lines = 0;
};

} // namespace

bool
read_trace_file(const std::string& path, TraceFile* out,
                std::string* err)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(size > 0 ? static_cast<size_t>(size) : 0);
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        if (err)
            *err = "short read on " + path;
        return false;
    }
    std::fclose(f);

    ByteReader r{bytes.data(), bytes.data() + bytes.size()};
    if (r.u64() != kMagic) {
        if (err)
            *err = path + ": not an ido-trace file (bad magic)";
        return false;
    }
    const uint32_t version = r.u32();
    r.u32(); // reserved
    if (version != 1) {
        if (err)
            *err = path + ": unsupported trace version";
        return false;
    }

    const uint32_t n_fases = r.u32();
    for (uint32_t i = 0; r.ok && i < n_fases; ++i) {
        const uint32_t fase_id = r.u32();
        const uint32_t n_regions = r.u32();
        FaseNames names;
        names.name = r.strz();
        for (uint32_t j = 0; r.ok && j < n_regions; ++j)
            names.regions.push_back(r.strz());
        out->fases[fase_id] = std::move(names);
    }

    const uint32_t n_threads = r.u32();
    for (uint32_t i = 0; r.ok && i < n_threads; ++i) {
        ThreadTrace t;
        t.tid = r.u32();
        r.u32(); // pad
        t.emitted = r.u64();
        t.dropped = r.u64();
        const uint64_t n_records = r.u64();
        t.records.resize(n_records);
        if (n_records != 0)
            r.take(t.records.data(), n_records * sizeof(TraceRecord));
        out->threads.push_back(std::move(t));
    }

    const uint32_t n_forensics = r.u32();
    for (uint32_t i = 0; r.ok && i < n_forensics; ++i) {
        ForensicLogRec fr;
        fr.source = static_cast<ForensicSource>(r.u32());
        const uint32_t n_locks = r.u32();
        fr.rec_off = r.u64();
        fr.thread_tag = r.u64();
        fr.recovery_pc = r.u64();
        fr.snap_selector = r.u64();
        for (uint32_t j = 0; r.ok && j < n_locks; ++j)
            fr.lock_holders.push_back(r.u64());
        r.take(fr.intRF, sizeof(fr.intRF));
        r.take(fr.floatRF, sizeof(fr.floatRF));
        out->forensics.push_back(std::move(fr));
    }

    if (!r.ok) {
        if (err)
            *err = path + ": truncated trace file";
        return false;
    }
    return true;
}

TraceFile
capture_current()
{
    TraceFile tf;
    tf.threads = Tracer::snapshot();
    tf.forensics = pending_forensics();
    for (const rt::FaseProgram* p :
         rt::FaseRegistry::instance().programs()) {
        FaseNames names;
        names.name = p->name;
        for (const rt::RegionMeta& m : p->regions)
            names.regions.push_back(m.name);
        tf.fases[p->fase_id] = std::move(names);
    }
    return tf;
}

// ---------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------

std::string
export_chrome_json(const TraceFile& tf)
{
    std::string out = "[\n";
    char buf[512];
    bool first = true;

    auto append = [&](const std::string& line) {
        if (!first)
            out += ",\n";
        first = false;
        out += line;
    };

    for (const ThreadTrace& t : tf.threads) {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"thread_name\","
                      "\"args\":{\"name\":\"worker-%u\"}}",
                      t.tid, t.tid);
        append(buf);

        // Pair begin/end kinds into complete ("X") events with a span
        // stack; point kinds become instants.  Spans left open (the
        // thread was crashed mid-FASE) are closed at the thread's last
        // timestamp so chrome://tracing still renders them.
        struct Open
        {
            size_t idx;        ///< index into t.records
            EventKind end_kind;
        };
        std::vector<Open> stack;
        const uint64_t last_ts =
            t.records.empty() ? 0 : t.records.back().ts_ns;

        auto emit_span = [&](const TraceRecord& b, uint64_t end_ns,
                             bool truncated) {
            const uint64_t dur = end_ns > b.ts_ns ? end_ns - b.ts_ns : 0;
            std::snprintf(
                buf, sizeof buf,
                "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"%s\","
                "\"args\":{\"a0\":%" PRIu64 ",\"a1\":%" PRIu64
                ",\"seq\":%u%s}}",
                t.tid, b.ts_ns / 1000.0, dur / 1000.0,
                json_escape(event_label(tf, b)).c_str(),
                event_kind_name(static_cast<EventKind>(b.kind)), b.a0,
                b.a1, b.seq,
                truncated ? ",\"truncated_by_crash\":true" : "");
            append(buf);
        };

        for (size_t i = 0; i < t.records.size(); ++i) {
            const TraceRecord& r = t.records[i];
            const auto kind = static_cast<EventKind>(r.kind);
            if (event_kind_is_begin(kind)) {
                stack.push_back({i, event_kind_end_of(kind)});
                continue;
            }
            bool closed = false;
            for (size_t s = stack.size(); s-- > 0;) {
                if (stack[s].end_kind == kind) {
                    // Close this span and anything nested above it
                    // (truncated at this end's timestamp).
                    while (stack.size() > s + 1) {
                        emit_span(t.records[stack.back().idx], r.ts_ns,
                                  true);
                        stack.pop_back();
                    }
                    emit_span(t.records[stack.back().idx], r.ts_ns,
                              false);
                    stack.pop_back();
                    closed = true;
                    break;
                }
            }
            if (closed)
                continue;
            // Orphan end (its begin was overwritten in the ring) or a
            // genuine point event: render as an instant.
            std::snprintf(
                buf, sizeof buf,
                "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                "\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\","
                "\"args\":{\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}}",
                t.tid, r.ts_ns / 1000.0,
                json_escape(event_label(tf, r)).c_str(),
                event_kind_name(kind), r.a0, r.a1);
            append(buf);
        }
        // Spans never closed: the crash interrupted them.
        while (!stack.empty()) {
            emit_span(t.records[stack.back().idx], last_ts, true);
            stack.pop_back();
        }
    }

    out += "\n]\n";
    return out;
}

// ---------------------------------------------------------------------
// Per-FASE summary
// ---------------------------------------------------------------------

std::string
format_fase_summary(const TraceFile& tf)
{
    // FASE spans keyed by fase_id; flushes/fences inside an open FASE
    // span are attributed to it.
    std::map<uint64_t, SpanStats> by_fase;
    uint64_t total_events = 0, total_dropped = 0;
    uint64_t fences_outside = 0, flushes_outside = 0;

    for (const ThreadTrace& t : tf.threads) {
        total_events += t.emitted;
        total_dropped += t.dropped;
        // (fase_id, begin_ts) stack; flush/fence go to the innermost.
        std::vector<std::pair<uint64_t, uint64_t>> open;
        for (const TraceRecord& r : t.records) {
            const auto kind = static_cast<EventKind>(r.kind);
            switch (kind) {
              case EventKind::kFaseBegin:
                open.emplace_back(r.a0, r.ts_ns);
                break;
              case EventKind::kFaseResume:
                open.emplace_back(recovery_pc_fase(r.a0), r.ts_ns);
                break;
              case EventKind::kFaseEnd: {
                if (open.empty())
                    break;
                auto [fase, begin_ts] = open.back();
                open.pop_back();
                SpanStats& s = by_fase[fase];
                const uint64_t d =
                    r.ts_ns > begin_ts ? r.ts_ns - begin_ts : 0;
                ++s.count;
                s.total_ns += d;
                s.min_ns = std::min(s.min_ns, d);
                s.max_ns = std::max(s.max_ns, d);
                break;
              }
              case EventKind::kFlush:
                if (open.empty()) {
                    ++flushes_outside;
                } else {
                    ++by_fase[open.back().first].flushes;
                    by_fase[open.back().first].lines += r.a1;
                }
                break;
              case EventKind::kFence:
                if (open.empty())
                    ++fences_outside;
                else
                    ++by_fase[open.back().first].fences;
                break;
              default:
                break;
            }
        }
    }

    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "threads %zu  events %" PRIu64 "  dropped %" PRIu64
                  "\n\n",
                  tf.threads.size(), total_events, total_dropped);
    out += buf;
    std::snprintf(buf, sizeof buf, "%-28s %8s %10s %10s %10s %8s %8s\n",
                  "fase", "spans", "mean_us", "min_us", "max_us",
                  "flushes", "fences");
    out += buf;
    for (const auto& [fase, s] : by_fase) {
        const double mean =
            s.count ? s.total_ns / 1000.0 / s.count : 0.0;
        std::snprintf(buf, sizeof buf,
                      "%-28s %8" PRIu64 " %10.2f %10.2f %10.2f %8" PRIu64
                      " %8" PRIu64 "\n",
                      fase_name(tf, fase).c_str(), s.count, mean,
                      s.count ? s.min_ns / 1000.0 : 0.0,
                      s.max_ns / 1000.0, s.flushes, s.fences);
        out += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "%-28s %8s %10s %10s %10s %8" PRIu64 " %8" PRIu64 "\n",
                  "(outside FASEs)", "-", "-", "-", "-", flushes_outside,
                  fences_outside);
    out += buf;
    return out;
}

// ---------------------------------------------------------------------
// Post-crash forensics
// ---------------------------------------------------------------------

std::string
format_forensics(const TraceFile& tf)
{
    std::string out;
    char buf[256];

    if (tf.forensics.empty()) {
        out += "no interrupted FASEs: every durable log record is "
               "inactive (clean state)\n";
        return out;
    }

    // Map thread_tag -> trace thread via kLogRecAttach events.  When a
    // record was attached twice (the crashed worker, then the recovery
    // thread adopting its log), keep the earliest attach: the forensic
    // question is what the *owner* was doing when it died.
    std::map<uint64_t, std::pair<uint64_t, const ThreadTrace*>> by_tag;
    for (const ThreadTrace& t : tf.threads) {
        for (const TraceRecord& r : t.records) {
            if (static_cast<EventKind>(r.kind) !=
                EventKind::kLogRecAttach)
                continue;
            auto it = by_tag.find(r.a1);
            if (it == by_tag.end() || r.ts_ns < it->second.first)
                by_tag[r.a1] = {r.ts_ns, &t};
        }
    }

    for (const ForensicLogRec& fr : tf.forensics) {
        std::snprintf(buf, sizeof buf,
                      "interrupted FASE: thread_tag %" PRIu64
                      " (%s log rec @0x%" PRIx64 ")\n",
                      fr.thread_tag,
                      fr.source == ForensicSource::kIdo ? "ido"
                                                        : "justdo",
                      fr.rec_off);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  recovery_pc  %s (0x%" PRIx64 ")\n",
                      pc_name(tf, fr.recovery_pc).c_str(),
                      fr.recovery_pc);
        out += buf;
        if (fr.source == ForensicSource::kJustdo) {
            std::snprintf(buf, sizeof buf,
                          "  RF snapshot  selector %" PRIu64
                          " (double-buffered)\n",
                          fr.snap_selector);
            out += buf;
        }
        out += "  lock holders ";
        if (fr.lock_holders.empty()) {
            out += "(none)";
        } else {
            for (uint64_t h : fr.lock_holders) {
                std::snprintf(buf, sizeof buf, "0x%" PRIx64 " ", h);
                out += buf;
            }
        }
        out += "\n  intRF        ";
        for (size_t i = 0; i < rt::kNumIntRegs; ++i) {
            std::snprintf(buf, sizeof buf, "%" PRIu64 "%s", fr.intRF[i],
                          i + 1 < rt::kNumIntRegs ? " " : "\n");
            out += buf;
        }

        auto it = by_tag.find(fr.thread_tag);
        if (it == by_tag.end()) {
            out += "  (no trace events recorded for this thread)\n\n";
            continue;
        }
        const ThreadTrace& t = *it->second.second;
        const size_t tail =
            t.records.size() > 8 ? t.records.size() - 8 : 0;
        std::snprintf(buf, sizeof buf,
                      "  final events of worker-%u (last %zu of "
                      "%" PRIu64 "):\n",
                      t.tid, t.records.size() - tail, t.emitted);
        out += buf;
        for (size_t i = tail; i < t.records.size(); ++i) {
            const TraceRecord& r = t.records[i];
            std::snprintf(
                buf, sizeof buf,
                "    %10.3f us  %-22s %s  a1=%" PRIu64 "\n",
                r.ts_ns / 1000.0,
                event_kind_name(static_cast<EventKind>(r.kind)),
                event_label(tf, r).c_str(), r.a1);
            out += buf;
        }
        out += "\n";
    }
    return out;
}

std::string
format_dump(const TraceFile& tf)
{
    std::string out;
    char buf[256];
    for (const ThreadTrace& t : tf.threads) {
        std::snprintf(buf, sizeof buf,
                      "thread %u: emitted %" PRIu64 " dropped %" PRIu64
                      "\n",
                      t.tid, t.emitted, t.dropped);
        out += buf;
        for (const TraceRecord& r : t.records) {
            std::snprintf(
                buf, sizeof buf,
                "  [%6u] %12.3f us  %-22s %s  a0=0x%" PRIx64
                " a1=%" PRIu64 "\n",
                r.seq, r.ts_ns / 1000.0,
                event_kind_name(static_cast<EventKind>(r.kind)),
                event_label(tf, r).c_str(), r.a0, r.a1);
            out += buf;
        }
    }
    return out;
}

} // namespace ido::trace
