/**
 * @file
 * Trace-file reading and export: Chrome trace-event JSON, per-FASE
 * latency/fence summaries, and post-crash forensic timelines.
 *
 * Everything here is cold-path tooling shared by the ido_trace CLI and
 * the tests; nothing is linked into instrumentation hot paths.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/forensics.h"
#include "trace/trace.h"

namespace ido::trace {

/** Region names of one FASE, indexed by region index. */
struct FaseNames
{
    std::string name;
    std::vector<std::string> regions;
};

/** A fully parsed trace: threads + name table + forensic records. */
struct TraceFile
{
    std::vector<ThreadTrace> threads;
    std::map<uint32_t, FaseNames> fases; ///< fase_id -> names
    std::vector<ForensicLogRec> forensics;
};

/**
 * Parse an ido-trace binary file.  @return false (with *err set) on
 * open failure, bad magic, or truncation.
 */
bool read_trace_file(const std::string& path, TraceFile* out,
                     std::string* err);

/**
 * Build a TraceFile from the live in-process tracer state (snapshot +
 * FaseRegistry + pending forensics) without a file round trip.
 */
TraceFile capture_current();

/**
 * Render the trace as a Chrome trace-event / Perfetto JSON array.
 * Begin/end kind pairs become "X" complete events; point events become
 * instants.  Load the output at chrome://tracing or ui.perfetto.dev.
 */
std::string export_chrome_json(const TraceFile& tf);

/**
 * Per-FASE latency and persist-traffic table: span count, mean/min/max
 * duration, and the flushes/fences attributed to each FASE.
 */
std::string format_fase_summary(const TraceFile& tf);

/**
 * Post-crash forensic report: for every interrupted FASE, the durable
 * log record recovery will start from (recovery_pc, snapshot selector,
 * lock holders, register file) next to the final trace events of the
 * thread that owned it.
 */
std::string format_forensics(const TraceFile& tf);

/** Flat human-readable event dump (debugging aid). */
std::string format_dump(const TraceFile& tf);

} // namespace ido::trace
