/**
 * @file
 * ido-trace: per-thread, lock-free ring-buffer event tracing.
 *
 * The paper's argument is entirely about *where persistence events
 * happen* -- log writes and fences at region boundaries, lock
 * reacquisition during resumption -- so the tracer records exactly
 * those: FASE begin/end, region boundaries, lock acquire/contend/
 * release, crash-opportunity firing, every recovery phase, and
 * allocator / persist-domain flush+fence traffic.
 *
 * Hot-path contract (the Sec. V-B scalability runs must not be
 * perturbed):
 *  - disarmed: one relaxed load + predicted-not-taken branch per
 *    instrumentation point; no stores, no clock reads;
 *  - armed: plain (non-atomic) stores into a fixed-size thread-local
 *    ring plus one steady-clock read; no allocation, no atomic RMW,
 *    no locks.  Ring registration (first event of a thread) is the
 *    only cold path that takes a mutex.
 *
 * Overflow never blocks and never reallocates: the ring overwrites its
 * oldest records and the per-thread sequence counter keeps an exact
 * count of how many were dropped (seq_total - capacity).
 *
 * Buffers outlive their threads (they are owned by a global registry,
 * not by TLS), so a post-crash forensic dump sees the final events of
 * every fail-stopped worker -- the whole point of crash forensics.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ido::trace {

/** What happened.  a0/a1 meanings are per-kind (see comments). */
enum class EventKind : uint16_t
{
    kNone = 0,

    // FASE execution (fase_executor)
    kFaseBegin,   ///< a0 = fase_id
    kFaseEnd,     ///< a0 = fase_id
    kFaseResume,  ///< a0 = pack(fase_id, region): recovery re-entry
    kRegionBegin, ///< a0 = pack(fase_id, region_idx)
    kRegionEnd,   ///< a0 = pack(fase_id, region_idx), a1 = stores

    // Indirect locking (runtime.cpp / per-runtime do_lock)
    kLockAcquire, ///< a0 = holder slot heap offset
    kLockContend, ///< a0 = holder slot heap offset (first failed TAS)
    kLockRelease, ///< a0 = holder slot heap offset

    // Crash simulation
    kCrashFired, ///< a0 = 1 fuse burnt down here, 0 = killed after

    // Persist-domain traffic (Real + Shadow domains)
    kFlush, ///< a0 = address/offset, a1 = cache lines written back
    kFence, ///< persist fence retired

    // Allocator (nv_heap)
    kAlloc, ///< a0 = payload offset, a1 = bytes
    kFree,  ///< a0 = payload offset

    // iDO region-boundary persist pair (ido_runtime)
    kPersistOutputs, ///< a0 = finished pc; boundary step 1 + fence
    kAdvancePc,      ///< a0 = new recovery_pc; boundary step 2 + fence

    // Log-record identity: lets the forensic timeline pair a trace
    // thread with its durable per-thread log record.
    kLogRecAttach, ///< a0 = log record heap offset, a1 = thread_tag

    // Recovery phases (ido_recovery + all baseline recover() paths)
    kRecoveryBegin,      ///< a0 = runtime kind ordinal
    kRecoveryEnd,        ///< a0 = runtime kind ordinal
    kRecoverLocksBegin,  ///< per-thread lock reacquisition starts
    kRecoverLocksEnd,    ///< a1 = locks reacquired
    kRecoverRestoreCtx,  ///< register file restored from the log
    kRecoverResumeBegin, ///< a0 = resume pc; forward re-execution
    kRecoverResumeEnd,   ///< a0 = resume pc
    kRecoverUndoBegin,   ///< a0 = log record offset (undo/redo walk)
    kRecoverUndoEnd,     ///< a1 = entries applied

    // NvHeap v2 (nv_heap)
    kArenaRefill, ///< a0 = chunk offset, a1 = chunk bytes
    kCacheSpill,  ///< a0 = size class, a1 = blocks spilled to a shard
    kLeakReclaim, ///< a0 = payload offset, a1 = pre-reclaim state word

    // ido-serve network front-end (src/net)
    kConnOpen,    ///< a0 = connection id
    kConnClose,   ///< a0 = connection id, a1 = requests served
    kGroupOpen,   ///< a0 = shard index; group-persist batch starts
    kGroupClose,  ///< a0 = shard index, a1 = requests in the batch
    kNetRequest,  ///< a0 = connection id, a1 = opcode (MemcOp)

    kMaxKind
};

const char* event_kind_name(EventKind k);

/** True for kinds that open a span closed by their matching end kind. */
bool event_kind_is_begin(EventKind k);

/** The matching end kind for a begin kind (kNone otherwise). */
EventKind event_kind_end_of(EventKind k);

/** One 32-byte trace record. */
struct TraceRecord
{
    uint64_t ts_ns; ///< steady-clock ns since Tracer::arm()
    uint64_t a0;
    uint64_t a1;
    uint32_t seq; ///< per-thread sequence number (drop accounting)
    uint16_t kind;
    uint16_t pad;
};

static_assert(sizeof(TraceRecord) == 32);

/** Snapshot of one thread's ring, oldest record first. */
struct ThreadTrace
{
    uint32_t tid = 0;          ///< tracer-assigned dense thread id
    uint64_t emitted = 0;      ///< total records emitted by the thread
    uint64_t dropped = 0;      ///< records lost to ring overwrite
    std::vector<TraceRecord> records;
};

namespace detail {

struct ThreadRing
{
    explicit ThreadRing(uint32_t tid_, size_t capacity);

    std::vector<TraceRecord> slots; ///< fixed at construction
    uint64_t next_seq = 0;          ///< total emitted (monotonic)
    uint32_t tid;
    bool retired = false; ///< owning thread exited
};

extern std::atomic<bool> g_armed;
extern std::atomic<uint64_t> g_epoch;

/** Resolve (or register) the calling thread's ring.  Cold path. */
ThreadRing* ring_for_thread();

uint64_t now_ns();

} // namespace detail

/**
 * Process-global tracer control.  arm()/disarm()/snapshot are called
 * from test or tool code only; emit() is the instrumentation point.
 */
class Tracer
{
  public:
    /** Default per-thread ring capacity (records; power of two). */
    static constexpr size_t kDefaultCapacity = 1u << 14;

    /**
     * Start recording.  Threads get a fresh ring of `capacity` records
     * (rounded up to a power of two) on their first event.  Resets the
     * clock origin; previously captured data is discarded.
     */
    static void arm(size_t capacity = kDefaultCapacity);

    /** Stop recording.  Captured rings remain readable. */
    static void disarm();

    static bool armed()
    {
        return detail::g_armed.load(std::memory_order_relaxed);
    }

    /** Drop all captured data and thread registrations. */
    static void reset();

    /** Copy out every thread's ring, oldest record first per thread. */
    static std::vector<ThreadTrace> snapshot();

    /** Sum of records lost to ring overwrite across all threads. */
    static uint64_t dropped_total();

    /** Number of threads that have emitted at least one record. */
    static size_t thread_count();

    /**
     * Serialize the captured trace (plus the FASE name table from the
     * live FaseRegistry, plus any forensic records collected via
     * trace::collect_*_forensics) to the ido-trace binary format.
     * @return true on success.
     */
    static bool write_file(const std::string& path);
};

/**
 * Record one event.  Safe to call from any thread at any time; a
 * no-op (one predicted branch) while disarmed.
 */
inline void
emit(EventKind kind, uint64_t a0 = 0, uint64_t a1 = 0)
{
    if (!Tracer::armed()) [[likely]]
        return;
    detail::ThreadRing* ring = detail::ring_for_thread();
    if (!ring)
        return; // registration raced with reset(); drop the event
    const uint64_t seq = ring->next_seq++;
    TraceRecord& r = ring->slots[seq & (ring->slots.size() - 1)];
    r.ts_ns = detail::now_ns();
    r.a0 = a0;
    r.a1 = a1;
    r.seq = static_cast<uint32_t>(seq);
    r.kind = static_cast<uint16_t>(kind);
    r.pad = 0;
}

} // namespace ido::trace
