#include "trace/trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "baselines/justdo_runtime.h"
#include "ido/ido_runtime.h"
#include "runtime/fase_program.h"
#include "trace/forensics.h"

namespace ido::trace {

namespace detail {

std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_epoch{1};

} // namespace detail

namespace {

struct TracerState
{
    std::mutex mutex;
    std::vector<std::unique_ptr<detail::ThreadRing>> rings;
    size_t capacity = Tracer::kDefaultCapacity;
    uint64_t origin_ns = 0;
    uint32_t next_tid = 0;
    std::vector<ForensicLogRec> forensics;
};

TracerState&
state()
{
    static TracerState* s = new TracerState; // immortal: threads may
    return *s;                               // outlive static dtors
}

size_t
round_up_pow2(size_t v)
{
    size_t p = 64;
    while (p < v)
        p <<= 1;
    return p;
}

uint64_t
wall_now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t g_origin_ns = 0;

/** Marks the owning thread's ring retired when the thread exits. */
struct TlsRingRef
{
    detail::ThreadRing* ring = nullptr;
    uint64_t epoch = 0;

    ~TlsRingRef()
    {
        if (ring == nullptr)
            return;
        std::lock_guard<std::mutex> g(state().mutex);
        // Only retire if the ring still belongs to the current arm
        // epoch (reset() may have discarded it already).
        if (epoch == detail::g_epoch.load(std::memory_order_relaxed))
            ring->retired = true;
        ring = nullptr;
    }
};

thread_local TlsRingRef t_ring;

/** Oldest-first copy of one ring. */
ThreadTrace
snapshot_ring(const detail::ThreadRing& ring)
{
    ThreadTrace out;
    out.tid = ring.tid;
    out.emitted = ring.next_seq;
    const size_t cap = ring.slots.size();
    out.dropped = ring.next_seq > cap ? ring.next_seq - cap : 0;
    const uint64_t first = out.dropped;
    out.records.reserve(ring.next_seq - first);
    for (uint64_t seq = first; seq < ring.next_seq; ++seq)
        out.records.push_back(ring.slots[seq & (cap - 1)]);
    return out;
}

} // namespace

namespace detail {

ThreadRing::ThreadRing(uint32_t tid_, size_t capacity)
    : slots(capacity), tid(tid_)
{
}

ThreadRing*
ring_for_thread()
{
    const uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
    if (t_ring.ring != nullptr && t_ring.epoch == epoch)
        return t_ring.ring;
    // Cold path: first event of this thread in this arm epoch.
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    if (epoch != g_epoch.load(std::memory_order_relaxed))
        return nullptr; // raced with reset(); caller drops the event
    s.rings.push_back(
        std::make_unique<ThreadRing>(s.next_tid++, s.capacity));
    t_ring.ring = s.rings.back().get();
    t_ring.epoch = epoch;
    return t_ring.ring;
}

uint64_t
now_ns()
{
    return wall_now_ns() - g_origin_ns;
}

} // namespace detail

void
Tracer::arm(size_t capacity)
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    detail::g_armed.store(false, std::memory_order_relaxed);
    s.rings.clear();
    s.forensics.clear();
    s.next_tid = 0;
    s.capacity = round_up_pow2(capacity);
    detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
    g_origin_ns = wall_now_ns();
    s.origin_ns = g_origin_ns;
    detail::g_armed.store(true, std::memory_order_relaxed);
}

void
Tracer::disarm()
{
    detail::g_armed.store(false, std::memory_order_relaxed);
}

void
Tracer::reset()
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    detail::g_armed.store(false, std::memory_order_relaxed);
    s.rings.clear();
    s.forensics.clear();
    s.next_tid = 0;
    detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ThreadTrace>
Tracer::snapshot()
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    std::vector<ThreadTrace> out;
    out.reserve(s.rings.size());
    for (const auto& ring : s.rings)
        out.push_back(snapshot_ring(*ring));
    return out;
}

uint64_t
Tracer::dropped_total()
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    uint64_t total = 0;
    for (const auto& ring : s.rings) {
        const size_t cap = ring->slots.size();
        if (ring->next_seq > cap)
            total += ring->next_seq - cap;
    }
    return total;
}

size_t
Tracer::thread_count()
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    return s.rings.size();
}

// --------------------------------------------------------------------------
// Forensics
// --------------------------------------------------------------------------

void
add_forensic(const ForensicLogRec& rec)
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    s.forensics.push_back(rec);
}

std::vector<ForensicLogRec>
pending_forensics()
{
    TracerState& s = state();
    std::lock_guard<std::mutex> g(s.mutex);
    return s.forensics;
}

size_t
collect_ido_forensics(IdoRuntime& rt)
{
    size_t captured = 0;
    auto& heap = rt.heap();
    auto& dom = rt.domain();
    for (uint64_t off : rt.log_rec_offsets()) {
        const auto* rec = heap.resolve<IdoLogRec>(off);
        const uint64_t pc = dom.load_val(&rec->recovery_pc);
        if (pc == kInactivePc)
            continue;
        ForensicLogRec f;
        f.source = ForensicSource::kIdo;
        f.rec_off = off;
        f.thread_tag = dom.load_val(&rec->thread_tag);
        f.recovery_pc = pc;
        const uint64_t bitmap = dom.load_val(&rec->lock_bitmap);
        for (size_t slot = 0; slot < kMaxHeldLocks; ++slot) {
            if (bitmap & (1ull << slot))
                f.lock_holders.push_back(
                    dom.load_val(&rec->lock_array[slot]));
        }
        for (size_t i = 0; i < rt::kNumIntRegs; ++i)
            f.intRF[i] = dom.load_val(&rec->intRF[i]);
        for (size_t i = 0; i < rt::kNumFloatRegs; ++i)
            f.floatRF[i] = dom.load_val(&rec->floatRF[i]);
        add_forensic(f);
        ++captured;
    }
    return captured;
}

size_t
collect_justdo_forensics(baselines::JustdoRuntime& rt)
{
    using baselines::JustdoLogRec;
    size_t captured = 0;
    auto& heap = rt.heap();
    auto& dom = rt.domain();
    for (uint64_t off : rt.log_rec_offsets()) {
        const auto* rec = heap.resolve<JustdoLogRec>(off);
        const uint64_t sel = dom.load_val(&rec->cur_snap) & 1;
        const auto* snap = &rec->snap[sel];
        const uint64_t pc = dom.load_val(&snap->recovery_pc);
        if (pc == kInactivePc)
            continue;
        ForensicLogRec f;
        f.source = ForensicSource::kJustdo;
        f.rec_off = off;
        f.thread_tag = dom.load_val(&rec->thread_tag);
        f.recovery_pc = pc;
        f.snap_selector = sel;
        const uint64_t bitmap = dom.load_val(&rec->lock_bitmap);
        for (size_t slot = 0; slot < 16; ++slot) {
            if (bitmap & (1ull << slot))
                f.lock_holders.push_back(
                    dom.load_val(&rec->lock_array[slot]));
        }
        for (size_t i = 0; i < rt::kNumIntRegs; ++i)
            f.intRF[i] = dom.load_val(&snap->intRF[i]);
        for (size_t i = 0; i < rt::kNumFloatRegs; ++i)
            f.floatRF[i] = dom.load_val(&snap->floatRF[i]);
        add_forensic(f);
        ++captured;
    }
    return captured;
}

// --------------------------------------------------------------------------
// Binary serialization (ido-trace format v1)
// --------------------------------------------------------------------------
//
//   u64 magic "IDOTRACE" | u32 version | u32 reserved
//   name table:  u32 n_fases, then per FASE:
//                u32 fase_id, u32 n_regions, strz name, strz regions...
//   threads:     u32 n_threads, then per thread:
//                u32 tid, u32 pad, u64 emitted, u64 dropped,
//                u64 n_records, raw TraceRecord[n_records]
//   forensics:   u32 n_recs, then per record:
//                u32 source, u32 n_locks, u64 rec_off, u64 thread_tag,
//                u64 recovery_pc, u64 snap_selector,
//                u64 locks[n_locks], u64 intRF[16], f64 floatRF[8]

namespace {

constexpr uint64_t kMagic = 0x45434152544f4449ull; // "IDOTRACE" LE
constexpr uint32_t kVersion = 1;

void
put_u32(std::FILE* f, uint32_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

void
put_u64(std::FILE* f, uint64_t v)
{
    std::fwrite(&v, sizeof(v), 1, f);
}

void
put_strz(std::FILE* f, const char* s)
{
    std::fwrite(s, 1, std::strlen(s) + 1, f);
}

} // namespace

bool
Tracer::write_file(const std::string& path)
{
    const std::vector<ThreadTrace> threads = snapshot();
    const std::vector<ForensicLogRec> forensics = pending_forensics();
    const auto programs = rt::FaseRegistry::instance().programs();

    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    put_u64(f, kMagic);
    put_u32(f, kVersion);
    put_u32(f, 0);

    put_u32(f, static_cast<uint32_t>(programs.size()));
    for (const rt::FaseProgram* p : programs) {
        put_u32(f, p->fase_id);
        put_u32(f, static_cast<uint32_t>(p->regions.size()));
        put_strz(f, p->name);
        for (const rt::RegionMeta& m : p->regions)
            put_strz(f, m.name);
    }

    put_u32(f, static_cast<uint32_t>(threads.size()));
    for (const ThreadTrace& t : threads) {
        put_u32(f, t.tid);
        put_u32(f, 0);
        put_u64(f, t.emitted);
        put_u64(f, t.dropped);
        put_u64(f, t.records.size());
        if (!t.records.empty())
            std::fwrite(t.records.data(), sizeof(TraceRecord),
                        t.records.size(), f);
    }

    put_u32(f, static_cast<uint32_t>(forensics.size()));
    for (const ForensicLogRec& fr : forensics) {
        put_u32(f, static_cast<uint32_t>(fr.source));
        put_u32(f, static_cast<uint32_t>(fr.lock_holders.size()));
        put_u64(f, fr.rec_off);
        put_u64(f, fr.thread_tag);
        put_u64(f, fr.recovery_pc);
        put_u64(f, fr.snap_selector);
        for (uint64_t h : fr.lock_holders)
            put_u64(f, h);
        std::fwrite(fr.intRF, sizeof(uint64_t), rt::kNumIntRegs, f);
        std::fwrite(fr.floatRF, sizeof(double), rt::kNumFloatRegs, f);
    }

    const bool ok = std::fflush(f) == 0 && !std::ferror(f);
    std::fclose(f);
    return ok;
}

// --------------------------------------------------------------------------
// Event-kind metadata
// --------------------------------------------------------------------------

const char*
event_kind_name(EventKind k)
{
    switch (k) {
      case EventKind::kNone:
        return "none";
      case EventKind::kFaseBegin:
        return "fase.begin";
      case EventKind::kFaseEnd:
        return "fase.end";
      case EventKind::kFaseResume:
        return "fase.resume";
      case EventKind::kRegionBegin:
        return "region.begin";
      case EventKind::kRegionEnd:
        return "region.end";
      case EventKind::kLockAcquire:
        return "lock.acquire";
      case EventKind::kLockContend:
        return "lock.contend";
      case EventKind::kLockRelease:
        return "lock.release";
      case EventKind::kCrashFired:
        return "crash.fired";
      case EventKind::kFlush:
        return "persist.flush";
      case EventKind::kFence:
        return "persist.fence";
      case EventKind::kAlloc:
        return "alloc.alloc";
      case EventKind::kFree:
        return "alloc.free";
      case EventKind::kPersistOutputs:
        return "ido.persist_outputs";
      case EventKind::kAdvancePc:
        return "ido.advance_pc";
      case EventKind::kLogRecAttach:
        return "log.attach";
      case EventKind::kRecoveryBegin:
        return "recovery.begin";
      case EventKind::kRecoveryEnd:
        return "recovery.end";
      case EventKind::kRecoverLocksBegin:
        return "recovery.locks.begin";
      case EventKind::kRecoverLocksEnd:
        return "recovery.locks.end";
      case EventKind::kRecoverRestoreCtx:
        return "recovery.restore_ctx";
      case EventKind::kRecoverResumeBegin:
        return "recovery.resume.begin";
      case EventKind::kRecoverResumeEnd:
        return "recovery.resume.end";
      case EventKind::kRecoverUndoBegin:
        return "recovery.undo.begin";
      case EventKind::kRecoverUndoEnd:
        return "recovery.undo.end";
      case EventKind::kArenaRefill:
        return "alloc.refill";
      case EventKind::kCacheSpill:
        return "alloc.spill";
      case EventKind::kLeakReclaim:
        return "alloc.reclaim";
      case EventKind::kConnOpen:
        return "net.conn.open";
      case EventKind::kConnClose:
        return "net.conn.close";
      case EventKind::kGroupOpen:
        return "net.group.open";
      case EventKind::kGroupClose:
        return "net.group.close";
      case EventKind::kNetRequest:
        return "net.request";
      case EventKind::kMaxKind:
        break;
    }
    return "?";
}

bool
event_kind_is_begin(EventKind k)
{
    return event_kind_end_of(k) != EventKind::kNone;
}

EventKind
event_kind_end_of(EventKind k)
{
    switch (k) {
      case EventKind::kFaseBegin:
      case EventKind::kFaseResume:
        return EventKind::kFaseEnd;
      case EventKind::kRegionBegin:
        return EventKind::kRegionEnd;
      case EventKind::kRecoveryBegin:
        return EventKind::kRecoveryEnd;
      case EventKind::kRecoverLocksBegin:
        return EventKind::kRecoverLocksEnd;
      case EventKind::kRecoverResumeBegin:
        return EventKind::kRecoverResumeEnd;
      case EventKind::kRecoverUndoBegin:
        return EventKind::kRecoverUndoEnd;
      case EventKind::kConnOpen:
        return EventKind::kConnClose;
      case EventKind::kGroupOpen:
        return EventKind::kGroupClose;
      default:
        return EventKind::kNone;
    }
}

} // namespace ido::trace
