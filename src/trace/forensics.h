/**
 * @file
 * Crash-recovery forensics: durable-log snapshots attached to a trace.
 *
 * After a (simulated) crash the event rings show *what each thread was
 * doing*; the durable per-thread log records show *what recovery will
 * see*.  A ForensicLogRec freezes the latter -- recovery_pc, the
 * JUSTDO resume-snapshot selector, the lock-holder list, and the
 * persisted register file -- so the ido_trace CLI can print each
 * interrupted FASE's timeline next to the log state recovery starts
 * from.  Collected between ShadowDomain::crash() and recover().
 */
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/region_ctx.h"

namespace ido {
class IdoRuntime;
namespace baselines {
class JustdoRuntime;
}
} // namespace ido

namespace ido::trace {

/** Which runtime's log record this is. */
enum class ForensicSource : uint32_t
{
    kIdo = 0,
    kJustdo = 1,
};

/** One durable per-thread log record, frozen post-crash. */
struct ForensicLogRec
{
    ForensicSource source = ForensicSource::kIdo;
    uint64_t rec_off = 0;       ///< heap offset of the log record
    uint64_t thread_tag = 0;    ///< the record's diagnostic thread id
    uint64_t recovery_pc = 0;   ///< pack(fase, region) or inactive
    uint64_t snap_selector = 0; ///< JUSTDO cur_snap (0/1); 0 for iDO
    std::vector<uint64_t> lock_holders; ///< held lock holder offsets
    uint64_t intRF[rt::kNumIntRegs] = {};
    double floatRF[rt::kNumFloatRegs] = {};
};

/**
 * Append one forensic record to the tracer's pending set (serialized
 * by Tracer::write_file, exported by the CLI).  Thread safe.
 */
void add_forensic(const ForensicLogRec& rec);

/** Pending forensic records (cleared by Tracer::arm / reset). */
std::vector<ForensicLogRec> pending_forensics();

/**
 * Walk every iDO log record of rt and capture the interrupted ones
 * (recovery_pc active).  @return records captured.
 */
size_t collect_ido_forensics(IdoRuntime& rt);

/** JUSTDO equivalent: interrupted resume snapshots. */
size_t collect_justdo_forensics(baselines::JustdoRuntime& rt);

} // namespace ido::trace
