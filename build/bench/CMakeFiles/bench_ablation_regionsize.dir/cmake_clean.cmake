file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regionsize.dir/bench_ablation_regionsize.cpp.o"
  "CMakeFiles/bench_ablation_regionsize.dir/bench_ablation_regionsize.cpp.o.d"
  "bench_ablation_regionsize"
  "bench_ablation_regionsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regionsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
