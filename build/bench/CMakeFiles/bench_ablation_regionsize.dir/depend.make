# Empty dependencies file for bench_ablation_regionsize.
# This may be replaced when dependencies are built.
