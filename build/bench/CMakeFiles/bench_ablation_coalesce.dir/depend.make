# Empty dependencies file for bench_ablation_coalesce.
# This may be replaced when dependencies are built.
