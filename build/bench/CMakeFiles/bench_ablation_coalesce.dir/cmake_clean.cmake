file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coalesce.dir/bench_ablation_coalesce.cpp.o"
  "CMakeFiles/bench_ablation_coalesce.dir/bench_ablation_coalesce.cpp.o.d"
  "bench_ablation_coalesce"
  "bench_ablation_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
