file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_locks.dir/bench_ablation_locks.cpp.o"
  "CMakeFiles/bench_ablation_locks.dir/bench_ablation_locks.cpp.o.d"
  "bench_ablation_locks"
  "bench_ablation_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
