# Empty compiler generated dependencies file for bench_ablation_locks.
# This may be replaced when dependencies are built.
