file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_memcached.dir/bench_fig5_memcached.cpp.o"
  "CMakeFiles/bench_fig5_memcached.dir/bench_fig5_memcached.cpp.o.d"
  "bench_fig5_memcached"
  "bench_fig5_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
