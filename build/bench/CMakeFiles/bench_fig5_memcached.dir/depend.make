# Empty dependencies file for bench_fig5_memcached.
# This may be replaced when dependencies are built.
