file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_scalability.dir/bench_fig7_scalability.cpp.o"
  "CMakeFiles/bench_fig7_scalability.dir/bench_fig7_scalability.cpp.o.d"
  "bench_fig7_scalability"
  "bench_fig7_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
