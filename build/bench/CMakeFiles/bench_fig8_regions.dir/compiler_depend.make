# Empty compiler generated dependencies file for bench_fig8_regions.
# This may be replaced when dependencies are built.
