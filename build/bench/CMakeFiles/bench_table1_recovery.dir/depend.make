# Empty dependencies file for bench_table1_recovery.
# This may be replaced when dependencies are built.
