file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_recovery.dir/bench_table1_recovery.cpp.o"
  "CMakeFiles/bench_table1_recovery.dir/bench_table1_recovery.cpp.o.d"
  "bench_table1_recovery"
  "bench_table1_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
