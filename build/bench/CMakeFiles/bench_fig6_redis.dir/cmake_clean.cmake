file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_redis.dir/bench_fig6_redis.cpp.o"
  "CMakeFiles/bench_fig6_redis.dir/bench_fig6_redis.cpp.o.d"
  "bench_fig6_redis"
  "bench_fig6_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
