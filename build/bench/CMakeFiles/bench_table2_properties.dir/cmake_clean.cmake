file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_properties.dir/bench_table2_properties.cpp.o"
  "CMakeFiles/bench_table2_properties.dir/bench_table2_properties.cpp.o.d"
  "bench_table2_properties"
  "bench_table2_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
