file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_latency.dir/bench_fig9_latency.cpp.o"
  "CMakeFiles/bench_fig9_latency.dir/bench_fig9_latency.cpp.o.d"
  "bench_fig9_latency"
  "bench_fig9_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
