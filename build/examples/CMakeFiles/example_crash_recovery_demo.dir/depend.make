# Empty dependencies file for example_crash_recovery_demo.
# This may be replaced when dependencies are built.
