file(REMOVE_RECURSE
  "CMakeFiles/example_crash_recovery_demo.dir/crash_recovery_demo.cpp.o"
  "CMakeFiles/example_crash_recovery_demo.dir/crash_recovery_demo.cpp.o.d"
  "example_crash_recovery_demo"
  "example_crash_recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_crash_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
