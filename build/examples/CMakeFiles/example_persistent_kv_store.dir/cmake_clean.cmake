file(REMOVE_RECURSE
  "CMakeFiles/example_persistent_kv_store.dir/persistent_kv_store.cpp.o"
  "CMakeFiles/example_persistent_kv_store.dir/persistent_kv_store.cpp.o.d"
  "example_persistent_kv_store"
  "example_persistent_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_persistent_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
