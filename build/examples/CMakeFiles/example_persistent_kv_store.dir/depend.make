# Empty dependencies file for example_persistent_kv_store.
# This may be replaced when dependencies are built.
