# Empty compiler generated dependencies file for ido_core.
# This may be replaced when dependencies are built.
