
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/memcached_client.cpp" "src/CMakeFiles/ido_core.dir/apps/memcached_client.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/apps/memcached_client.cpp.o.d"
  "/root/repo/src/apps/memcached_mini.cpp" "src/CMakeFiles/ido_core.dir/apps/memcached_mini.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/apps/memcached_mini.cpp.o.d"
  "/root/repo/src/apps/redis_client.cpp" "src/CMakeFiles/ido_core.dir/apps/redis_client.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/apps/redis_client.cpp.o.d"
  "/root/repo/src/apps/redis_mini.cpp" "src/CMakeFiles/ido_core.dir/apps/redis_mini.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/apps/redis_mini.cpp.o.d"
  "/root/repo/src/baselines/atlas_recovery.cpp" "src/CMakeFiles/ido_core.dir/baselines/atlas_recovery.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/atlas_recovery.cpp.o.d"
  "/root/repo/src/baselines/atlas_runtime.cpp" "src/CMakeFiles/ido_core.dir/baselines/atlas_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/atlas_runtime.cpp.o.d"
  "/root/repo/src/baselines/justdo_runtime.cpp" "src/CMakeFiles/ido_core.dir/baselines/justdo_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/justdo_runtime.cpp.o.d"
  "/root/repo/src/baselines/mnemosyne_runtime.cpp" "src/CMakeFiles/ido_core.dir/baselines/mnemosyne_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/mnemosyne_runtime.cpp.o.d"
  "/root/repo/src/baselines/nvml_runtime.cpp" "src/CMakeFiles/ido_core.dir/baselines/nvml_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/nvml_runtime.cpp.o.d"
  "/root/repo/src/baselines/nvthreads_runtime.cpp" "src/CMakeFiles/ido_core.dir/baselines/nvthreads_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/nvthreads_runtime.cpp.o.d"
  "/root/repo/src/baselines/origin_runtime.cpp" "src/CMakeFiles/ido_core.dir/baselines/origin_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/origin_runtime.cpp.o.d"
  "/root/repo/src/baselines/runtime_factory.cpp" "src/CMakeFiles/ido_core.dir/baselines/runtime_factory.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/baselines/runtime_factory.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/CMakeFiles/ido_core.dir/common/histogram.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/common/histogram.cpp.o.d"
  "/root/repo/src/common/panic.cpp" "src/CMakeFiles/ido_core.dir/common/panic.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/common/panic.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/ido_core.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/spin_delay.cpp" "src/CMakeFiles/ido_core.dir/common/spin_delay.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/common/spin_delay.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/CMakeFiles/ido_core.dir/common/zipf.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/common/zipf.cpp.o.d"
  "/root/repo/src/compiler/alias_analysis.cpp" "src/CMakeFiles/ido_core.dir/compiler/alias_analysis.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/alias_analysis.cpp.o.d"
  "/root/repo/src/compiler/antidep.cpp" "src/CMakeFiles/ido_core.dir/compiler/antidep.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/antidep.cpp.o.d"
  "/root/repo/src/compiler/cfg.cpp" "src/CMakeFiles/ido_core.dir/compiler/cfg.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/cfg.cpp.o.d"
  "/root/repo/src/compiler/dataflow.cpp" "src/CMakeFiles/ido_core.dir/compiler/dataflow.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/dataflow.cpp.o.d"
  "/root/repo/src/compiler/fase_compiler.cpp" "src/CMakeFiles/ido_core.dir/compiler/fase_compiler.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/fase_compiler.cpp.o.d"
  "/root/repo/src/compiler/idempotence_verifier.cpp" "src/CMakeFiles/ido_core.dir/compiler/idempotence_verifier.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/idempotence_verifier.cpp.o.d"
  "/root/repo/src/compiler/interpreter.cpp" "src/CMakeFiles/ido_core.dir/compiler/interpreter.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/interpreter.cpp.o.d"
  "/root/repo/src/compiler/ir.cpp" "src/CMakeFiles/ido_core.dir/compiler/ir.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/ir.cpp.o.d"
  "/root/repo/src/compiler/ir_library.cpp" "src/CMakeFiles/ido_core.dir/compiler/ir_library.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/ir_library.cpp.o.d"
  "/root/repo/src/compiler/region_info.cpp" "src/CMakeFiles/ido_core.dir/compiler/region_info.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/region_info.cpp.o.d"
  "/root/repo/src/compiler/region_partition.cpp" "src/CMakeFiles/ido_core.dir/compiler/region_partition.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/compiler/region_partition.cpp.o.d"
  "/root/repo/src/ds/hashmap.cpp" "src/CMakeFiles/ido_core.dir/ds/hashmap.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ds/hashmap.cpp.o.d"
  "/root/repo/src/ds/ordered_list.cpp" "src/CMakeFiles/ido_core.dir/ds/ordered_list.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ds/ordered_list.cpp.o.d"
  "/root/repo/src/ds/queue.cpp" "src/CMakeFiles/ido_core.dir/ds/queue.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ds/queue.cpp.o.d"
  "/root/repo/src/ds/stack.cpp" "src/CMakeFiles/ido_core.dir/ds/stack.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ds/stack.cpp.o.d"
  "/root/repo/src/ds/workload.cpp" "src/CMakeFiles/ido_core.dir/ds/workload.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ds/workload.cpp.o.d"
  "/root/repo/src/ido/ido_log.cpp" "src/CMakeFiles/ido_core.dir/ido/ido_log.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ido/ido_log.cpp.o.d"
  "/root/repo/src/ido/ido_recovery.cpp" "src/CMakeFiles/ido_core.dir/ido/ido_recovery.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ido/ido_recovery.cpp.o.d"
  "/root/repo/src/ido/ido_runtime.cpp" "src/CMakeFiles/ido_core.dir/ido/ido_runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/ido/ido_runtime.cpp.o.d"
  "/root/repo/src/nvm/nv_allocator.cpp" "src/CMakeFiles/ido_core.dir/nvm/nv_allocator.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/nvm/nv_allocator.cpp.o.d"
  "/root/repo/src/nvm/persist_domain.cpp" "src/CMakeFiles/ido_core.dir/nvm/persist_domain.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/nvm/persist_domain.cpp.o.d"
  "/root/repo/src/nvm/persistent_heap.cpp" "src/CMakeFiles/ido_core.dir/nvm/persistent_heap.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/nvm/persistent_heap.cpp.o.d"
  "/root/repo/src/nvm/shadow_domain.cpp" "src/CMakeFiles/ido_core.dir/nvm/shadow_domain.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/nvm/shadow_domain.cpp.o.d"
  "/root/repo/src/runtime/crash_sim.cpp" "src/CMakeFiles/ido_core.dir/runtime/crash_sim.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/runtime/crash_sim.cpp.o.d"
  "/root/repo/src/runtime/fase_executor.cpp" "src/CMakeFiles/ido_core.dir/runtime/fase_executor.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/runtime/fase_executor.cpp.o.d"
  "/root/repo/src/runtime/fase_program.cpp" "src/CMakeFiles/ido_core.dir/runtime/fase_program.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/runtime/fase_program.cpp.o.d"
  "/root/repo/src/runtime/indirect_lock.cpp" "src/CMakeFiles/ido_core.dir/runtime/indirect_lock.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/runtime/indirect_lock.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/ido_core.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/stats/persist_stats.cpp" "src/CMakeFiles/ido_core.dir/stats/persist_stats.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/stats/persist_stats.cpp.o.d"
  "/root/repo/src/stats/region_stats.cpp" "src/CMakeFiles/ido_core.dir/stats/region_stats.cpp.o" "gcc" "src/CMakeFiles/ido_core.dir/stats/region_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
