file(REMOVE_RECURSE
  "libido_core.a"
)
