file(REMOVE_RECURSE
  "CMakeFiles/test_lock_table.dir/test_lock_table.cpp.o"
  "CMakeFiles/test_lock_table.dir/test_lock_table.cpp.o.d"
  "test_lock_table"
  "test_lock_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
