# Empty compiler generated dependencies file for test_lock_table.
# This may be replaced when dependencies are built.
