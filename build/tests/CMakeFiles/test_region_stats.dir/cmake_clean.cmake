file(REMOVE_RECURSE
  "CMakeFiles/test_region_stats.dir/test_region_stats.cpp.o"
  "CMakeFiles/test_region_stats.dir/test_region_stats.cpp.o.d"
  "test_region_stats"
  "test_region_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
