# Empty dependencies file for test_crash_consistency.
# This may be replaced when dependencies are built.
