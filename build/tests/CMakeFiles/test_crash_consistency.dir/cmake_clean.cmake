file(REMOVE_RECURSE
  "CMakeFiles/test_crash_consistency.dir/test_crash_consistency.cpp.o"
  "CMakeFiles/test_crash_consistency.dir/test_crash_consistency.cpp.o.d"
  "test_crash_consistency"
  "test_crash_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
