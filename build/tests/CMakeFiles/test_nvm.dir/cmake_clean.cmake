file(REMOVE_RECURSE
  "CMakeFiles/test_nvm.dir/test_nvm.cpp.o"
  "CMakeFiles/test_nvm.dir/test_nvm.cpp.o.d"
  "test_nvm"
  "test_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
