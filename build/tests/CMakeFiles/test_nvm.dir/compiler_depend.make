# Empty compiler generated dependencies file for test_nvm.
# This may be replaced when dependencies are built.
