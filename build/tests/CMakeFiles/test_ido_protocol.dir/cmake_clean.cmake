file(REMOVE_RECURSE
  "CMakeFiles/test_ido_protocol.dir/test_ido_protocol.cpp.o"
  "CMakeFiles/test_ido_protocol.dir/test_ido_protocol.cpp.o.d"
  "test_ido_protocol"
  "test_ido_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ido_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
