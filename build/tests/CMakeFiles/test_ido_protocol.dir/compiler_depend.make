# Empty compiler generated dependencies file for test_ido_protocol.
# This may be replaced when dependencies are built.
