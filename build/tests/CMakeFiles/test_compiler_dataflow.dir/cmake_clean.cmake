file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_dataflow.dir/test_compiler_dataflow.cpp.o"
  "CMakeFiles/test_compiler_dataflow.dir/test_compiler_dataflow.cpp.o.d"
  "test_compiler_dataflow"
  "test_compiler_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
