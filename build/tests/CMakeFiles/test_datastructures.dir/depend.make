# Empty dependencies file for test_datastructures.
# This may be replaced when dependencies are built.
