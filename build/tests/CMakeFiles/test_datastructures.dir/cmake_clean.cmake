file(REMOVE_RECURSE
  "CMakeFiles/test_datastructures.dir/test_datastructures.cpp.o"
  "CMakeFiles/test_datastructures.dir/test_datastructures.cpp.o.d"
  "test_datastructures"
  "test_datastructures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datastructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
