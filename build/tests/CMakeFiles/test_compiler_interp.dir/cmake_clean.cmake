file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_interp.dir/test_compiler_interp.cpp.o"
  "CMakeFiles/test_compiler_interp.dir/test_compiler_interp.cpp.o.d"
  "test_compiler_interp"
  "test_compiler_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
