# Empty dependencies file for test_compiler_interp.
# This may be replaced when dependencies are built.
