file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_driver.dir/test_runtime_driver.cpp.o"
  "CMakeFiles/test_runtime_driver.dir/test_runtime_driver.cpp.o.d"
  "test_runtime_driver"
  "test_runtime_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
