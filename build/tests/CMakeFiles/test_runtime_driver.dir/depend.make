# Empty dependencies file for test_runtime_driver.
# This may be replaced when dependencies are built.
