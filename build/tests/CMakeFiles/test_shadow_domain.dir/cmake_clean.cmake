file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_domain.dir/test_shadow_domain.cpp.o"
  "CMakeFiles/test_shadow_domain.dir/test_shadow_domain.cpp.o.d"
  "test_shadow_domain"
  "test_shadow_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
