# Empty dependencies file for test_shadow_domain.
# This may be replaced when dependencies are built.
