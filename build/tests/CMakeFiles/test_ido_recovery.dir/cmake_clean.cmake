file(REMOVE_RECURSE
  "CMakeFiles/test_ido_recovery.dir/test_ido_recovery.cpp.o"
  "CMakeFiles/test_ido_recovery.dir/test_ido_recovery.cpp.o.d"
  "test_ido_recovery"
  "test_ido_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ido_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
