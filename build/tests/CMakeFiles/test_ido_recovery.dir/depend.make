# Empty dependencies file for test_ido_recovery.
# This may be replaced when dependencies are built.
