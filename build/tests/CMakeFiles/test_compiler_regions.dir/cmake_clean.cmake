file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_regions.dir/test_compiler_regions.cpp.o"
  "CMakeFiles/test_compiler_regions.dir/test_compiler_regions.cpp.o.d"
  "test_compiler_regions"
  "test_compiler_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
