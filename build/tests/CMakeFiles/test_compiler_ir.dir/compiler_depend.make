# Empty compiler generated dependencies file for test_compiler_ir.
# This may be replaced when dependencies are built.
