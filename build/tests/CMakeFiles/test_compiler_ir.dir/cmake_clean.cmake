file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_ir.dir/test_compiler_ir.cpp.o"
  "CMakeFiles/test_compiler_ir.dir/test_compiler_ir.cpp.o.d"
  "test_compiler_ir"
  "test_compiler_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
