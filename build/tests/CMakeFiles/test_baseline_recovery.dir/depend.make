# Empty dependencies file for test_baseline_recovery.
# This may be replaced when dependencies are built.
