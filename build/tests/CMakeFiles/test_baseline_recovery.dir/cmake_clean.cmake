file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_recovery.dir/test_baseline_recovery.cpp.o"
  "CMakeFiles/test_baseline_recovery.dir/test_baseline_recovery.cpp.o.d"
  "test_baseline_recovery"
  "test_baseline_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
