/**
 * @file
 * Table I reproduction: recovery-time ratio Atlas/iDO after killing
 * the microbenchmarks at increasing run lengths.
 *
 * The paper kills after 1..50 s; scaled here (default 0.2..2 s via
 * IDO_BENCH_SECONDS multipliers) because the mechanism is what
 * matters: Atlas recovery must traverse its entire log volume and
 * compute a consistent cut, so its cost grows with run length, while
 * iDO recovery is a constant amount of work per thread (reacquire
 * locks, restore registers, finish at most one FASE each).  The ratio
 * therefore grows with kill time -- the paper reports up to ~400x.
 *
 * A "kill" is the in-process fail-stop: the crash scheduler detonates,
 * worker threads unwind mid-FASE, and a fresh runtime instance runs
 * recovery over the surviving heap (timed).
 */
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "ds/workload.h"

using namespace ido;
using namespace ido::bench;

namespace {

/** Run the workload for `secs`, kill, and time recovery (ns). */
uint64_t
timed_crash_recovery(baselines::RuntimeKind kind, ds::DsKind s,
                     double secs, size_t log_bytes)
{
    nvm::PersistentHeap heap({.size = 1536u << 20});
    nvm::RealDomain dom;
    rt::RuntimeConfig cfg;
    cfg.log_bytes_per_thread = log_bytes;
    auto runtime = baselines::make_runtime(kind, heap, dom, cfg);

    ds::WorkloadConfig wl;
    wl.ds = s;
    wl.threads = 4;
    wl.duration_seconds = secs * 1000; // effectively until the kill
    wl.key_range = 512;
    const uint64_t root = ds::workload_setup(*runtime, wl);

    // Kill after `secs` of wall-clock work: a watchdog arms the crash
    // scheduler so every thread unwinds at its next opportunity.
    std::thread killer([&] {
        Stopwatch w;
        while (w.elapsed_seconds() < secs)
            std::this_thread::yield();
        runtime->crash_scheduler().arm(1);
    });
    ds::workload_run(*runtime, root, wl);
    killer.join();

    // Fail-stop: fresh runtime; time its recovery.
    auto recovered = baselines::make_runtime(kind, heap, dom, cfg);
    Stopwatch timer;
    recovered->recover();
    return timer.elapsed_ns();
}

} // namespace

int
main()
{
    const double unit = bench_seconds(); // one "paper decasecond"
    const double kill_times[] = {unit * 0.1, unit, unit * 2,
                                 unit * 3,   unit * 4, unit * 5};
    const char* labels[] = {"0.1u", "1u", "2u", "3u", "4u", "5u"};

    const ds::DsKind structures[] = {
        ds::DsKind::kStack, ds::DsKind::kQueue,
        ds::DsKind::kOrderedList, ds::DsKind::kHashMap};

    print_header("Table I: recovery time ratio (Atlas / iDO)");
    std::printf("%-12s", "kill time");
    for (const char* l : labels)
        std::printf(" %10s", l);
    std::printf("\n");

    for (const ds::DsKind s : structures) {
        std::printf("%-12s", ds::ds_kind_name(s));
        for (size_t i = 0; i < std::size(kill_times); ++i) {
            const double t = kill_times[i];
            // Atlas log volume scales with work; keep logs big enough
            // that the ring does not wrap for the longest kill time (96 MB
            // per thread covers ~0.5 Mops-seconds of entries).
            const uint64_t atlas_ns = timed_crash_recovery(
                baselines::RuntimeKind::kAtlas, s, t, 96u << 20);
            const uint64_t ido_ns = timed_crash_recovery(
                baselines::RuntimeKind::kIdo, s, t, 4u << 20);
            std::printf(" %10.1f",
                        double(atlas_ns) / double(ido_ns ? ido_ns : 1));
            // Recovery time is the datum, so seconds carries it and
            // ops is 1 (one timed recovery per row).
            for (const auto& [rt_name, ns] :
                 {std::pair<const char*, uint64_t>{"atlas", atlas_ns},
                  {"ido", ido_ns}}) {
                const std::string label = std::string(rt_name) + "_"
                                          + ds::ds_kind_name(s) + "_"
                                          + labels[i];
                emit_json_row("table1_recovery", label.c_str(), 4, 1,
                              double(ns) / 1e9);
            }
        }
        std::printf("\n");
    }
    std::printf("\n(u = %.2fs; paper kill times are 1..50s on a 64-HW-"
                "thread machine.)\n",
                unit);
    return 0;
}
