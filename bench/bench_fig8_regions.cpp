/**
 * @file
 * Figure 8 reproduction: cumulative dynamic distribution of (top)
 * persistent stores per idempotent region and (bottom) live-in
 * registers per region, for each benchmark.  The paper collected
 * these with Pin; here the runtime observes every dynamic region
 * directly.
 *
 * Paper shape: microbenchmark regions mostly have 0-1 stores; roughly
 * 30% (memcached) to 50% (redis set-path) of application regions have
 * multiple stores (the consolidation that buys iDO its advantage);
 * more than 99% of dynamic regions have fewer than five live-in
 * registers, so one cache-line flush usually covers the inputs.
 *
 * Also prints the static region characteristics the compiler pipeline
 * derives for the IR function library (Sec. V-C flavour).
 */
#include "apps/memcached_client.h"
#include "apps/redis_client.h"
#include "bench/bench_util.h"
#include "compiler/fase_compiler.h"
#include "compiler/ir_library.h"
#include "ds/workload.h"
#include "stats/region_stats.h"

using namespace ido;
using namespace ido::bench;

int
main()
{
    const double secs = bench_seconds();
    auto& collector = RegionStatsCollector::instance();
    collector.enable();

    // --- dynamic distributions (Fig. 8 proper) ------------------------
    const ds::DsKind micro[] = {ds::DsKind::kStack, ds::DsKind::kQueue,
                                ds::DsKind::kOrderedList,
                                ds::DsKind::kHashMap};
    for (const ds::DsKind s : micro) {
        collector.reset();
        nvm::PersistentHeap heap({.size = 256u << 20});
        nvm::RealDomain dom;
        rt::RuntimeConfig cfg;
        cfg.collect_region_stats = true;
        auto runtime = baselines::make_runtime(
            baselines::RuntimeKind::kIdo, heap, dom, cfg);
        ds::WorkloadConfig wl;
        wl.ds = s;
        wl.threads = 2;
        wl.duration_seconds = secs;
        const uint64_t root = ds::workload_setup(*runtime, wl);
        const auto result = ds::workload_run(*runtime, root, wl);
        std::fputs(collector.format_fig8(ds::ds_kind_name(s)).c_str(),
                   stdout);
        emit_json_row("fig8_regions", ds::ds_kind_name(s), wl.threads,
                      result.total_ops, secs);
    }

    {
        collector.reset();
        nvm::PersistentHeap heap({.size = 256u << 20});
        nvm::RealDomain dom;
        rt::RuntimeConfig cfg;
        cfg.collect_region_stats = true;
        auto runtime = baselines::make_runtime(
            baselines::RuntimeKind::kIdo, heap, dom, cfg);
        apps::MemcachedWorkloadConfig wl;
        wl.threads = 2;
        wl.set_pct = 50;
        wl.duration_seconds = secs;
        const uint64_t root = apps::memcached_setup(*runtime, wl);
        const auto result = apps::memcached_run(*runtime, root, wl);
        std::fputs(collector.format_fig8("memcached").c_str(), stdout);
        emit_json_row("fig8_regions", "memcached", wl.threads,
                      result.total_ops, secs);
    }

    {
        collector.reset();
        nvm::PersistentHeap heap({.size = 512u << 20});
        nvm::RealDomain dom;
        rt::RuntimeConfig cfg;
        cfg.collect_region_stats = true;
        auto runtime = baselines::make_runtime(
            baselines::RuntimeKind::kIdo, heap, dom, cfg);
        apps::RedisWorkloadConfig wl;
        wl.key_range = 100000;
        wl.duration_seconds = secs;
        const uint64_t root = apps::redis_setup(*runtime, wl);
        const auto result = apps::redis_run(*runtime, root, wl);
        std::fputs(collector.format_fig8("redis").c_str(), stdout);
        emit_json_row("fig8_regions", "redis", 1, result.total_ops,
                      secs);
    }

    // --- static region characteristics from the compiler pipeline -----
    print_header("compiler-derived static region characteristics");
    struct Entry
    {
        const char* name;
        compiler::IrFase (*make)();
    };
    const Entry entries[] = {
        {"ir.stack.push", compiler::ir_stack_push},
        {"ir.stack.pop", compiler::ir_stack_pop},
        {"ir.counter.incr", compiler::ir_counter_increment},
        {"ir.array.addloop", compiler::ir_array_add_loop},
    };
    uint32_t next_id = 7100;
    for (const Entry& e : entries) {
        compiler::IrFase f = e.make();
        compiler::CompiledFase cf(next_id++, std::move(f.fn));
        std::printf("%-18s regions=%2u antidep_cuts=%u "
                    "mandatory_cuts=%u\n",
                    e.name, cf.partition().num_regions(),
                    cf.partition().antidep_cut_count(),
                    cf.partition().mandatory_cut_count());
        for (uint32_t r = 0; r < cf.region_info().size(); ++r) {
            const auto& ri = cf.region_info()[r];
            std::printf("    region %u: instrs=%u loads=%u stores=%u "
                        "live_in=%d outputs=%d%s%s\n",
                        r, ri.num_instrs, ri.num_loads, ri.num_stores,
                        __builtin_popcountll(ri.live_in),
                        __builtin_popcountll(ri.outputs),
                        ri.has_lock ? " lock" : "",
                        ri.has_unlock ? " unlock" : "");
        }
    }
    collector.disable();
    return 0;
}
