/**
 * @file
 * ido-serve group-commit ablation: throughput and fences per request
 * for batch limits K in {1, 4, 16}, on the memcached-canonical
 * read-heavy mix (2 sets per 16 requests).  K=1 is the stock
 * per-request iDO protocol (the batcher never opens a persist group);
 * larger K lets each shard execute up to K pipelined requests between
 * batch-open and the single batch-close fence, eliding the
 * recovery-pc and lock-record fences of every read-only tail
 * (ido_runtime.h states the exact soundness rule).
 *
 * Acceptance (checked by CI from BENCH_server.json): K=16 cuts
 * fences/request by at least 2x vs K=1 at equal or better throughput.
 *
 * Clients are real loopback-TCP connections pipelining bursts, since
 * a blocking client can never present a shard with more than one
 * queued request and would degenerate every K to 1.
 */
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "apps/memcached_client.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "net/memc_client.h"
#include "net/server.h"

using namespace ido;
using namespace ido::bench;

namespace {

constexpr uint32_t kClients = 4;
constexpr uint32_t kBurst = 64;      ///< pipelined requests per flush
constexpr uint64_t kKeySpace = 2048; ///< prefilled working set

struct KResult
{
    uint64_t requests = 0;
    uint64_t fences = 0;
    double seconds = 0.0;
};

KResult
run_at_batch_limit(uint32_t batch_limit, double secs)
{
    BenchWorld world(baselines::RuntimeKind::kIdo);
    apps::MemcachedMini::register_programs();
    net::ServerConfig scfg;
    scfg.shards = 4;
    scfg.batch_limit = batch_limit;
    scfg.nbuckets = 1024;
    net::Server server(*world.runtime, scfg);
    std::thread srv([&] { server.run(); });

    {
        net::MemcClient c;
        if (!c.connect_retry("127.0.0.1", server.port(), 100, 10)) {
            std::fprintf(stderr, "bench_server: connect failed\n");
            std::exit(1);
        }
        for (uint64_t i = 0; i < kKeySpace; ++i)
            c.pipeline_set(apps::memcached_key_text(i), i);
        if (c.pipeline_flush() != kKeySpace) {
            std::fprintf(stderr, "bench_server: prefill failed\n");
            std::exit(1);
        }
    }
    persist_counters_reset_global();

    std::vector<std::thread> clients;
    std::vector<uint64_t> ops(kClients, 0);
    std::atomic<bool> stop{false};
    for (uint32_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            net::MemcClient c;
            if (!c.connect_retry("127.0.0.1", server.port(), 100, 10))
                return;
            Rng rng(1234 + t);
            while (!stop.load(std::memory_order_relaxed)) {
                for (uint32_t i = 0; i < kBurst; ++i) {
                    const uint64_t idx = rng.next_below(kKeySpace);
                    const std::string key = apps::memcached_key_text(idx);
                    if (i % 8 == 0)
                        c.pipeline_set(key, rng.next());
                    else
                        c.pipeline_get(key);
                }
                if (c.pipeline_flush() != kBurst)
                    return; // server gone
                ops[t] += kBurst;
            }
        });
    }
    Stopwatch clock;
    while (clock.elapsed_seconds() < secs)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true, std::memory_order_relaxed);
    for (auto& c : clients)
        c.join();
    KResult r;
    r.seconds = clock.elapsed_seconds();
    server.stop(); // joins shard workers: TLS fence counters flushed
    srv.join();
    for (uint32_t t = 0; t < kClients; ++t)
        r.requests += ops[t];
    r.fences = persist_counters_global().fences;
    return r;
}

} // namespace

int
main()
{
    const double secs = bench_seconds();
    print_header("ido-serve group commit (4 shards, 4 pipelined "
                 "clients, 2 sets / 14 gets per 16 requests)");
    std::printf("%-8s %12s %12s %14s\n", "K", "Mreq/s", "fences",
                "fences/req");
    for (uint32_t k : {1u, 4u, 16u}) {
        const KResult r = run_at_batch_limit(k, secs);
        const double fpr =
            r.requests ? double(r.fences) / double(r.requests) : 0.0;
        std::printf("%-8u %12.3f %12llu %14.3f\n", k,
                    r.requests / r.seconds / 1e6,
                    static_cast<unsigned long long>(r.fences), fpr);
        // One BENCH_server.json; the K ablation lives in the runtime
        // label so CI can compare rows from a single file.
        const std::string label = "ido_k" + std::to_string(k);
        emit_json_row("server", label.c_str(), kClients, r.requests,
                      r.seconds);
    }
    return 0;
}
