/**
 * @file
 * ido-serve group-commit ablation: throughput and fences per request
 * for batch limits K in {1, 4, 16}, on the memcached-canonical
 * read-heavy mix (2 sets per 16 requests).  K=1 is the stock
 * per-request iDO protocol (the batcher never opens a persist group);
 * larger K lets each shard execute up to K pipelined requests between
 * batch-open and the single batch-close fence, eliding the
 * recovery-pc and lock-record fences of every read-only tail
 * (ido_runtime.h states the exact soundness rule).
 *
 * Acceptance (checked by CI from BENCH_server.json): K=16 cuts
 * fences/request by at least 2x vs K=1 at equal or better throughput.
 *
 * Clients are real loopback-TCP connections pipelining bursts, since
 * a blocking client can never present a shard with more than one
 * queued request and would degenerate every K to 1.
 */
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "apps/memcached_client.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "net/admin.h"
#include "net/memc_client.h"
#include "net/server.h"
#include "stats/metrics.h"
#include "stats/stat_plane.h"

using namespace ido;
using namespace ido::bench;

namespace {

constexpr uint32_t kClients = 4;
constexpr uint32_t kBurst = 64;      ///< pipelined requests per flush
constexpr uint64_t kKeySpace = 2048; ///< prefilled working set

struct KResult
{
    uint64_t requests = 0;
    uint64_t fences = 0;
    uint64_t scrapes = 0;
    double seconds = 0.0;
    LatencyHistogram lat; ///< server-side end-to-end request ns
};

/** IDO_STAT_SCRAPE_MS: poll the admin /metrics endpoint at this
 *  period during the run (0 = no scraper).  Lets CI measure the
 *  overhead of live scraping on top of the instrumentation itself. */
uint64_t
scrape_period_ms()
{
    const char* env = std::getenv("IDO_STAT_SCRAPE_MS");
    return env ? std::strtoull(env, nullptr, 10) : 0;
}

KResult
run_at_batch_limit(uint32_t batch_limit, double secs)
{
    const uint64_t scrape_ms = scrape_period_ms();
    BenchWorld world(baselines::RuntimeKind::kIdo);
    apps::MemcachedMini::register_programs();
    net::ServerConfig scfg;
    scfg.shards = 4;
    scfg.batch_limit = batch_limit;
    scfg.nbuckets = 1024;
    scfg.admin = scrape_ms > 0;
    net::Server server(*world.runtime, scfg);
    std::thread srv([&] { server.run(); });

    {
        net::MemcClient c;
        if (!c.connect_retry("127.0.0.1", server.port(), 100, 10)) {
            std::fprintf(stderr, "bench_server: connect failed\n");
            std::exit(1);
        }
        for (uint64_t i = 0; i < kKeySpace; ++i)
            c.pipeline_set(apps::memcached_key_text(i), i);
        if (c.pipeline_flush() != kKeySpace) {
            std::fprintf(stderr, "bench_server: prefill failed\n");
            std::exit(1);
        }
    }
    persist_counters_reset_global();
    // Drop the prefill traffic from the server-side request
    // percentiles so each K row reports only the measured window.
    auto& reg = MetricsRegistry::instance();
    LatencyRecorder* const recs[] = {reg.latency("net.lat.req.get"),
                                     reg.latency("net.lat.req.set"),
                                     reg.latency("net.lat.req.delete")};
    for (auto* rec : recs)
        rec->reset();

    std::vector<std::thread> clients;
    std::vector<uint64_t> ops(kClients, 0);
    std::atomic<bool> stop{false};
    for (uint32_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            net::MemcClient c;
            if (!c.connect_retry("127.0.0.1", server.port(), 100, 10))
                return;
            Rng rng(1234 + t);
            while (!stop.load(std::memory_order_relaxed)) {
                for (uint32_t i = 0; i < kBurst; ++i) {
                    const uint64_t idx = rng.next_below(kKeySpace);
                    const std::string key = apps::memcached_key_text(idx);
                    if (i % 8 == 0)
                        c.pipeline_set(key, rng.next());
                    else
                        c.pipeline_get(key);
                }
                if (c.pipeline_flush() != kBurst)
                    return; // server gone
                ops[t] += kBurst;
            }
        });
    }
    KResult r;
    std::thread scraper;
    if (scrape_ms > 0) {
        scraper = std::thread([&] {
            std::string body;
            while (!stop.load(std::memory_order_relaxed)) {
                if (net::admin_http_get(server.admin_port(), "/metrics",
                                        &body))
                    r.scrapes++;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(scrape_ms));
            }
        });
    }
    Stopwatch clock;
    while (clock.elapsed_seconds() < secs)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true, std::memory_order_relaxed);
    for (auto& c : clients)
        c.join();
    if (scraper.joinable())
        scraper.join();
    r.seconds = clock.elapsed_seconds();
    server.stop(); // joins shard workers: TLS fence counters flushed
    srv.join();
    for (uint32_t t = 0; t < kClients; ++t)
        r.requests += ops[t];
    r.fences = persist_counters_global().fences;
    // Server-side percentiles (empty when IDO_STAT=off: the shards
    // never record, and emit_json_row skips an empty histogram).
    for (auto* rec : recs)
        r.lat.merge(rec->snapshot());
    return r;
}

} // namespace

int
main()
{
    const double secs = bench_seconds();
    print_header("ido-serve group commit (4 shards, 4 pipelined "
                 "clients, 2 sets / 14 gets per 16 requests)");
    std::printf("%-8s %12s %12s %14s %10s %10s %10s\n", "K", "Mreq/s",
                "fences", "fences/req", "p50_us", "p99_us", "p999_us");
    for (uint32_t k : {1u, 4u, 16u}) {
        const KResult r = run_at_batch_limit(k, secs);
        const double fpr =
            r.requests ? double(r.fences) / double(r.requests) : 0.0;
        std::printf("%-8u %12.3f %12llu %14.3f %10.1f %10.1f %10.1f\n",
                    k, r.requests / r.seconds / 1e6,
                    static_cast<unsigned long long>(r.fences), fpr,
                    r.lat.percentile(0.50) / 1e3,
                    r.lat.percentile(0.99) / 1e3,
                    r.lat.percentile(0.999) / 1e3);
        if (r.scrapes)
            std::printf("         (admin /metrics scraped %llu times)\n",
                        static_cast<unsigned long long>(r.scrapes));
        // One BENCH_server.json; the K ablation lives in the runtime
        // label so CI can compare rows from a single file.
        const std::string label = "ido_k" + std::to_string(k);
        emit_json_row("server", label.c_str(), kClients, r.requests,
                      r.seconds, &r.lat);
    }
    return 0;
}
