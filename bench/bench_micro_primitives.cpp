/**
 * @file
 * Microbenchmarks of the substrate primitives every runtime is built
 * from: persist fences, cache-line write-backs, transient spinlocks,
 * the NVM allocator, the Zipf sampler, and the shadow domain's
 * interposition overhead.  These calibrate the cost model behind the
 * figure harnesses.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "nvm/nv_allocator.h"
#include "nvm/persist_domain.h"
#include "nvm/shadow_domain.h"
#include "runtime/indirect_lock.h"

using namespace ido;

namespace {

void
BM_StoreOnly(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom;
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state)
        dom.store_val(p, ++v);
}

void
BM_FlushFence(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom;
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state) {
        dom.store_val(p, ++v);
        dom.flush(p, 8);
        dom.fence();
    }
}

void
BM_FlushFenceWithDelay(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom(static_cast<uint32_t>(state.range(0)));
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state) {
        dom.store_val(p, ++v);
        dom.flush(p, 8);
        dom.fence();
    }
}

void
BM_TransientLock(benchmark::State& state)
{
    rt::TransientLock lock;
    for (auto _ : state) {
        lock.lock();
        lock.unlock();
    }
}

void
BM_LockTableResolve(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    rt::LockTable table;
    auto* slot = heap.resolve<uint64_t>(4096);
    *slot = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(&table.lock_for(slot));
}

void
BM_NvAllocFree(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 64u << 20});
    nvm::RealDomain dom;
    nvm::NvAllocator alloc(heap, dom);
    for (auto _ : state) {
        const uint64_t off = alloc.alloc(64, dom);
        alloc.free_block(off, dom);
    }
}

void
BM_ZipfSample(benchmark::State& state)
{
    ZipfSampler zipf(1000000, 0.8);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
}

void
BM_ShadowStoreLoad(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::ShadowDomain shadow(heap.base(), heap.size());
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state) {
        shadow.store_val(p, ++v);
        benchmark::DoNotOptimize(shadow.load_val(p));
    }
}

} // namespace

BENCHMARK(BM_StoreOnly);
BENCHMARK(BM_FlushFence);
BENCHMARK(BM_FlushFenceWithDelay)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_TransientLock);
BENCHMARK(BM_LockTableResolve);
BENCHMARK(BM_NvAllocFree);
BENCHMARK(BM_ZipfSample);
BENCHMARK(BM_ShadowStoreLoad);

BENCHMARK_MAIN();
