/**
 * @file
 * Microbenchmarks of the substrate primitives every runtime is built
 * from: persist fences, cache-line write-backs, transient spinlocks,
 * the NvHeap allocator, the Zipf sampler, and the shadow domain's
 * interposition overhead.  These calibrate the cost model behind the
 * figure harnesses.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "compiler/fase_compiler.h"
#include "compiler/ir_library.h"
#include "ds/stack.h"
#include "fuzz/rr.h"
#include "ido/ido_runtime.h"
#include "nvm/heap_gc.h"
#include "nvm/nv_heap.h"
#include "nvm/persist_domain.h"
#include "nvm/shadow_domain.h"
#include "runtime/indirect_lock.h"

using namespace ido;

namespace {

void
BM_StoreOnly(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom;
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state)
        dom.store_val(p, ++v);
}

void
BM_FlushFence(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom;
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state) {
        dom.store_val(p, ++v);
        dom.flush(p, 8);
        dom.fence();
    }
}

void
BM_FlushFenceWithDelay(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom(static_cast<uint32_t>(state.range(0)));
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state) {
        dom.store_val(p, ++v);
        dom.flush(p, 8);
        dom.fence();
    }
}

void
BM_TransientLock(benchmark::State& state)
{
    rt::TransientLock lock;
    for (auto _ : state) {
        lock.lock();
        lock.unlock();
    }
}

void
BM_LockTableResolve(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    rt::LockTable table;
    auto* slot = heap.resolve<uint64_t>(4096);
    *slot = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(&table.lock_for(slot));
}

void
BM_NvHeapAllocFree(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 64u << 20});
    nvm::RealDomain dom;
    nvm::NvHeap h(heap, dom);
    for (auto _ : state) {
        const uint64_t off = h.alloc(64, dom);
        h.free_block(off, dom);
    }
}

// --------------------------------------------------------------------------
// Allocator scalability series (BENCH_alloc.json)
// --------------------------------------------------------------------------

/**
 * Fixed-duration alloc/free churn on `threads` workers; returns ops
 * completed.  Mixed sizes keep several classes hot, matching the
 * runtimes' log-record + ds-node mix rather than a single-class
 * best case.
 */
template <typename Allocator>
uint64_t
alloc_churn(Allocator& alloc, nvm::PersistDomain& dom, uint32_t threads,
            double seconds)
{
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> total_ops{0};
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(t * 7919 + 13);
            std::vector<uint64_t> live;
            live.reserve(128);
            uint64_t ops = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                if (live.size() < 64 || rng.percent(50)) {
                    const uint64_t off =
                        alloc.alloc(8 + rng.next_below(248), dom);
                    if (off != 0)
                        live.push_back(off);
                } else {
                    const size_t idx = rng.next_below(live.size());
                    alloc.free_block(live[idx], dom);
                    live[idx] = live.back();
                    live.pop_back();
                }
                ++ops;
            }
            for (uint64_t off : live)
                alloc.free_block(off, dom);
            total_ops.fetch_add(ops, std::memory_order_relaxed);
        });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers)
        w.join();
    return total_ops.load();
}

/**
 * NvHeap throughput at 1/2/4/8 threads.  Each row lands in
 * BENCH_alloc.json when IDO_BENCH_JSON is set; the printed table is
 * the paper-style summary.  The scaling column is relative to the
 * single-thread rate of the same build, which is what the sharded
 * design is supposed to improve (the retired v1 single-mutex
 * allocator flat-lined here -- see DESIGN.md Sec. 9).
 */
void
run_alloc_series()
{
    const double seconds = bench::bench_seconds();
    std::printf("\n=== allocator scalability (alloc/free churn, "
                "%.2fs per point) ===\n",
                seconds);
    std::printf("%-12s %8s %14s %14s %8s\n", "allocator", "threads",
                "ops", "ops/sec", "scaling");
    double one_thread_rate = 0;
    for (uint32_t threads : bench::thread_sweep()) {
        nvm::RealDomain dom;
        nvm::PersistentHeap heap({.size = 256u << 20});
        nvm::NvHeap v2(heap, dom);
        const uint64_t ops = alloc_churn(v2, dom, threads, seconds);
        const double rate = double(ops) / seconds;
        if (threads == 1)
            one_thread_rate = rate;
        std::printf("%-12s %8u %14llu %14.0f %7.2fx\n", "nvheap-v2",
                    threads, static_cast<unsigned long long>(ops), rate,
                    one_thread_rate > 0 ? rate / one_thread_rate : 0.0);
        bench::emit_json_row("alloc", "nvheap_v2", threads, ops,
                             seconds);
    }
}

// --------------------------------------------------------------------------
// Compiled-FASE boundary series (BENCH_micro.json): flush elision ablation
// --------------------------------------------------------------------------

/**
 * The iDO boundary protocol's write-back cost with the verified flush
 * elision off (ido_elide0) and on (ido_elide1): compiled stack
 * push/pop pairs under IdoRuntime, single thread.  CI's fence-diet
 * gate asserts flushes/op of ido_elide1 < ido_elide0 from the emitted
 * BENCH_micro.json rows -- elision must actually shrink the boundary,
 * not just prove that it could.
 */
void
run_boundary_series()
{
    using namespace ido::compiler;
    std::printf("\n=== compiled push/pop boundary cost, "
                "flush elision off/on ===\n");
    std::printf("%-12s %10s %14s   %s\n", "config", "ops", "ops/sec",
                "persist profile");
    for (int elide = 0; elide <= 1; ++elide) {
        IrFase push_ir = ir_stack_push();
        IrFase pop_ir = ir_stack_pop();
        CompiledFase push(9101 + elide, std::move(push_ir.fn),
                          LintMode::kWarn, elide != 0);
        CompiledFase pop(9103 + elide, std::move(pop_ir.fn),
                         LintMode::kWarn, elide != 0);
        nvm::PersistentHeap heap({.size = 64u << 20});
        nvm::RealDomain dom;
        rt::RuntimeConfig cfg;
        cfg.flush_elision = elide != 0;
        IdoRuntime runtime(heap, dom, cfg);
        auto th = runtime.make_thread();
        const uint64_t root = ds::PStack::create(*th);

        // Setup counts (and any residue of the google-benchmark loops
        // above) must not leak into this row's profile.
        persist_counters_flush_tls();
        persist_counters_reset_global();

        constexpr uint64_t kPairs = 20000;
        const auto t0 = std::chrono::steady_clock::now();
        for (uint64_t i = 0; i < kPairs; ++i) {
            rt::RegionCtx c1;
            c1.r[push_ir.arg0] = root;
            c1.r[push_ir.arg1] = i;
            th->run_fase(push.program(), c1);
            rt::RegionCtx c2;
            c2.r[pop_ir.arg0] = root;
            th->run_fase(pop.program(), c2);
        }
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        persist_counters_flush_tls();

        const uint64_t ops = kPairs * 2;
        const char* name = elide ? "ido_elide1" : "ido_elide0";
        std::printf("%-12s %10llu %14.0f   %s\n", name,
                    static_cast<unsigned long long>(ops),
                    seconds > 0 ? double(ops) / seconds : 0.0,
                    bench::persist_profile(ops).c_str());
        bench::emit_json_row("micro", name, 1, ops, seconds);
    }
}

// --------------------------------------------------------------------------
// Heap GC / compaction series (BENCH_heap.json)
// --------------------------------------------------------------------------

/**
 * Reachability GC and compaction cost on a churned typed corpus.
 * Builds a rooted chain, deletes three quarters of it (the sparse-heap
 * shape a long-running server produces), plants a batch of unrooted
 * blocks, and times the three GC entry points.  One BENCH_heap.json
 * row per phase -- audit ops are blocks walked, repair ops blocks
 * reclaimed, compact ops blocks relocated -- and every row's embedded
 * metrics snapshot carries heap.fragmentation plus the heap.gc.*
 * counters the CI churn gate reads.
 */
void
run_heap_series()
{
    struct Node
    {
        uint64_t next;
        uint64_t tag;
        uint64_t pad[2];
    };
    nvm::TypeDescriptor d;
    d.name = "bench.heap_node";
    d.payload_size = sizeof(Node);
    d.link_offsets = {0};
    nvm::TypeRegistry::instance().register_type(nvm::TypeId::kTestBlock,
                                                d);

    nvm::PersistentHeap heap({.size = 256u << 20});
    nvm::RealDomain dom;
    nvm::NvHeap h(heap, dom);
    constexpr uint64_t kNodes = 20000;
    for (uint64_t t = 0; t < kNodes; ++t) {
        h.alloc_linked(nvm::RootSlot::kUser0, nvm::TypeId::kTestBlock,
                       sizeof(Node), dom,
                       [&](void* p, uint64_t prev_head) {
                           Node n{prev_head, t, {0, 0}};
                           dom.store(p, &n, sizeof(n));
                       });
    }
    // Delete 3 of every 4 nodes, unlinking durably as a mutator would.
    uint64_t head = nvm::RootRegistry::get_ref(heap,
                                               nvm::RootSlot::kUser0);
    while (head != 0) {
        const Node* n = heap.resolve<Node>(head);
        if (n->tag % 4 == 0)
            break;
        const uint64_t next = n->next;
        nvm::RootRegistry::set_ref(heap, nvm::RootSlot::kUser0, next,
                                   dom);
        h.free_block(head, dom);
        head = next;
    }
    for (uint64_t prev = head; prev != 0;) {
        Node* pn = heap.resolve<Node>(prev);
        const uint64_t cur = pn->next;
        if (cur == 0)
            break;
        if (heap.resolve<Node>(cur)->tag % 4 == 0) {
            prev = cur;
            continue;
        }
        const uint64_t next = heap.resolve<Node>(cur)->next;
        dom.store_val(&pn->next, next);
        dom.flush(&pn->next, sizeof(uint64_t));
        dom.fence();
        h.free_block(cur, dom);
    }
    // Unrooted blocks give the repair phase real work.
    constexpr uint64_t kLeaks = 1000;
    for (uint64_t i = 0; i < kLeaks; ++i) {
        const uint64_t off =
            h.alloc(sizeof(Node), dom, nvm::TypeId::kTestBlock);
        Node z{0, 0, {0, 0}};
        dom.store(heap.resolve<void>(off), &z, sizeof(z));
    }

    std::printf("\n=== heap GC / compaction (%llu-node corpus, 1/4 "
                "live) ===\n",
                static_cast<unsigned long long>(kNodes));
    std::printf("%-12s %10s %14s %14s\n", "phase", "ops", "ops/sec",
                "notes");
    nvm::HeapGc gc(h, dom);
    const auto timed = [&](const char* phase, auto&& run,
                           auto&& ops_of) {
        const auto t0 = std::chrono::steady_clock::now();
        const nvm::GcStats s = run();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        nvm::HeapGc::publish(s);
        const uint64_t ops = ops_of(s);
        char notes[128];
        std::snprintf(notes, sizeof(notes),
                      "live %llu  leaked %llu  retired %llu",
                      static_cast<unsigned long long>(s.live_blocks),
                      static_cast<unsigned long long>(s.leaked_blocks),
                      static_cast<unsigned long long>(s.chunks_retired));
        std::printf("%-12s %10llu %14.0f %s\n", phase,
                    static_cast<unsigned long long>(ops),
                    seconds > 0 ? double(ops) / seconds : 0.0, notes);
        bench::emit_json_row("heap", phase, 1, ops, seconds);
    };
    timed("gc_audit", [&] { return gc.audit(); },
          [](const nvm::GcStats& s) { return s.blocks; });
    timed("gc_repair", [&] { return gc.repair(); },
          [](const nvm::GcStats& s) { return s.reclaimed_blocks; });
    timed("gc_compact", [&] { return gc.compact(); },
          [](const nvm::GcStats& s) { return s.relocated_blocks; });
}

// --------------------------------------------------------------------------
// Record/replay overhead series (BENCH_fuzz.json)
// --------------------------------------------------------------------------

/**
 * Fixed-op shadowed alloc/free churn: every allocator shard acquisition
 * and every ShadowDomain shard acquisition is an rr sync point, so this
 * is the worst realistic density of recorded ops.  Returns wall time.
 */
struct RrChurnWorld
{
    RrChurnWorld()
        : heap({.size = 256u << 20}),
          shadow(heap.base(), heap.size(), 1),
          alloc(heap, shadow)
    {
    }
    nvm::PersistentHeap heap;
    nvm::ShadowDomain shadow;
    nvm::NvHeap alloc;
};

double
rr_churn(RrChurnWorld& w, uint32_t threads, uint64_t ops_per_thread)
{
    nvm::PersistentHeap& heap = w.heap;
    nvm::ShadowDomain& shadow = w.shadow;
    nvm::NvHeap& alloc = w.alloc;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            fuzz::rr::ThreadScope scope(t); // no-op when rr is off
            Rng rng(t * 7919 + 13);
            std::vector<uint64_t> live;
            live.reserve(128);
            for (uint64_t i = 0; i < ops_per_thread; ++i) {
                if (live.size() < 64 || rng.percent(50)) {
                    const uint64_t off =
                        alloc.alloc(8 + rng.next_below(248), shadow);
                    if (off == 0)
                        continue;
                    uint64_t stamp = off ^ (uint64_t{t} << 48);
                    void* p = heap.resolve<void>(off);
                    shadow.store(p, &stamp, sizeof(stamp));
                    shadow.flush(p, sizeof(stamp));
                    shadow.fence();
                    live.push_back(off);
                } else {
                    const size_t idx = rng.next_below(live.size());
                    alloc.free_block(live[idx], shadow);
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
        });
    }
    for (auto& w : workers)
        w.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

/**
 * ido-fuzz recording cost vs the uninstrumented fast path, same fixed
 * op count at 8 threads.  CI's rr-overhead gate reads the two
 * BENCH_fuzz.json rows and asserts record time <= 3x off time.
 */
void
run_rr_overhead_series()
{
    // Each alloc's fence records all 64 shadow shards, so op counts
    // are sized to stay within the default per-thread log capacity.
    constexpr uint32_t kThreads = 8;
    constexpr uint64_t kOpsPerThread = 8000;
    constexpr uint64_t kOps = kThreads * kOpsPerThread;
    std::printf("\n=== rr recording overhead (8-thread shadowed churn, "
                "%llu ops) ===\n",
                static_cast<unsigned long long>(kOps));

    double off = 0, rec = 0;
    {
        RrChurnWorld w;
        off = rr_churn(w, kThreads, kOpsPerThread);
        w.shadow.drain_all();
    }
    {
        // World construction (allocator formatting writes through the
        // shadow) happens before recording starts: the recorded phase
        // is exactly the churn, as in the fuzz driver.
        RrChurnWorld w;
        fuzz::rr::start_record(1, /*chaos_pct=*/0);
        rec = rr_churn(w, kThreads, kOpsPerThread);
        fuzz::rr::stop_record();
        w.shadow.drain_all();
    }

    std::printf("%-12s %10llu %14.0f ops/sec\n", "rr_off",
                static_cast<unsigned long long>(kOps),
                off > 0 ? double(kOps) / off : 0.0);
    std::printf("%-12s %10llu %14.0f ops/sec  (%.2fx)\n", "rr_record",
                static_cast<unsigned long long>(kOps),
                rec > 0 ? double(kOps) / rec : 0.0,
                off > 0 ? rec / off : 0.0);
    bench::emit_json_row("fuzz", "rr_off", kThreads, kOps, off);
    bench::emit_json_row("fuzz", "rr_record", kThreads, kOps, rec);
}

void
BM_ZipfSample(benchmark::State& state)
{
    ZipfSampler zipf(1000000, 0.8);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
}

void
BM_ShadowStoreLoad(benchmark::State& state)
{
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::ShadowDomain shadow(heap.base(), heap.size());
    auto* p = heap.resolve<uint64_t>(4096);
    uint64_t v = 0;
    for (auto _ : state) {
        shadow.store_val(p, ++v);
        benchmark::DoNotOptimize(shadow.load_val(p));
    }
}

} // namespace

BENCHMARK(BM_StoreOnly);
BENCHMARK(BM_FlushFence);
BENCHMARK(BM_FlushFenceWithDelay)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_TransientLock);
BENCHMARK(BM_LockTableResolve);
BENCHMARK(BM_NvHeapAllocFree);
BENCHMARK(BM_ZipfSample);
BENCHMARK(BM_ShadowStoreLoad);

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    run_alloc_series();
    run_boundary_series();
    run_heap_series();
    run_rr_overhead_series();
    return 0;
}
