/**
 * @file
 * ido-cluster scaling bench: real forked ido_serve processes under
 * NodeSupervisor, swept over nodes in {1, 2, 4} x replication
 * {off, on}.  Clients route through the consistent-hash ring
 * (ClusterClient) and pipeline K-deep bursts, so the group-commit
 * batcher sees the same depth the server bench uses (K=16) and a
 * replicated primary amortizes one replica round trip per batch, not
 * per request.
 *
 * Replication pairs node 0 with a replica (the supervisor's topology);
 * nodes 1+ stay unreplicated, so the n1 rows isolate the replication
 * cost.  Acceptance (checked by CI from BENCH_cluster.json): at K=16
 * the unreplicated single node may outrun the replicated one by at
 * most 1.6x -- the batch-amortized ack flight must not dominate.
 *
 * Latency rows report the client-observed round trip of one K-deep
 * pipelined burst (flush-to-last-ack), the unit a batched client
 * actually waits on; p99 is over bursts, not single ops.
 */
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <libgen.h>
#include <string>
#include <thread>
#include <vector>

#include "apps/memcached_client.h"
#include "bench/bench_util.h"
#include "cluster/cluster_client.h"
#include "cluster/supervisor.h"
#include "common/rng.h"
#include "common/stopwatch.h"

using namespace ido;
using namespace ido::bench;

namespace {

constexpr uint32_t kClients = 4;
constexpr uint32_t kBurst = 16;      ///< = server batch limit K
constexpr uint64_t kKeySpace = 2048; ///< prefilled working set

struct ClusterResult
{
    uint64_t acks = 0;
    double seconds = 0.0;
    LatencyHistogram burst_rtt; ///< ns per K-deep flush round trip
};

std::string
serve_bin_path(const char* argv0)
{
    if (const char* env = std::getenv("IDO_SERVE_BIN"))
        return env;
    // Build-tree layout: bench/ and tools/ are sibling directories.
    std::vector<char> buf(argv0, argv0 + std::strlen(argv0) + 1);
    return std::string(::dirname(buf.data())) + "/../tools/ido_serve";
}

std::string
make_temp_dir()
{
    char tmpl[] = "/tmp/ido_bench_cluster_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) {
        std::fprintf(stderr, "bench_cluster: mkdtemp failed\n");
        std::exit(1);
    }
    return dir;
}

ClusterResult
run_config(const std::string& serve_bin, uint32_t nodes, bool replicate,
           double secs)
{
    const std::string dir = make_temp_dir();
    cluster::SupervisorConfig scfg;
    scfg.serve_bin = serve_bin;
    scfg.dir = dir;
    scfg.nodes = nodes;
    scfg.replicate = replicate;
    scfg.shards = 2;
    scfg.batch = kBurst;
    scfg.heap_bytes = 64u << 20;
    cluster::NodeSupervisor sup(scfg);
    if (!sup.start_all()) {
        std::fprintf(stderr, "bench_cluster: cluster failed to start\n");
        std::exit(1);
    }

    {
        cluster::ClusterClient c(sup.node_addrs());
        if (!c.connect_all()) {
            std::fprintf(stderr, "bench_cluster: connect failed\n");
            std::exit(1);
        }
        size_t acked = 0;
        for (uint64_t i = 0; i < kKeySpace; ++i)
            c.pipeline_set(apps::memcached_key_text(i), i);
        for (const size_t n : c.flush_all())
            acked += n;
        if (acked != kKeySpace) {
            std::fprintf(stderr, "bench_cluster: prefill failed\n");
            std::exit(1);
        }
    }

    ClusterResult r;
    std::vector<std::thread> clients;
    std::vector<uint64_t> acks(kClients, 0);
    std::vector<LatencyHistogram> lats(kClients);
    std::atomic<bool> stop{false};
    for (uint32_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            cluster::ClusterClient c(sup.node_addrs());
            if (!c.connect_all())
                return;
            Rng rng(1234 + t);
            while (!stop.load(std::memory_order_relaxed)) {
                for (uint32_t i = 0; i < kBurst; ++i) {
                    const uint64_t idx = rng.next_below(kKeySpace);
                    const std::string key = apps::memcached_key_text(idx);
                    if (i % 8 == 0)
                        c.pipeline_set(key, rng.next());
                    else
                        c.pipeline_get(key);
                }
                const auto t0 = std::chrono::steady_clock::now();
                size_t got = 0;
                for (const size_t n : c.flush_all())
                    got += n;
                const auto t1 = std::chrono::steady_clock::now();
                if (got != kBurst)
                    return; // a node went away: bench world is broken
                lats[t].record(static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count()));
                acks[t] += got;
            }
        });
    }
    Stopwatch clock;
    while (clock.elapsed_seconds() < secs)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true, std::memory_order_relaxed);
    for (auto& c : clients)
        c.join();
    r.seconds = clock.elapsed_seconds();
    for (uint32_t t = 0; t < kClients; ++t) {
        r.acks += acks[t];
        r.burst_rtt.merge(lats[t]);
    }
    ::system(("rm -rf " + dir).c_str());
    return r;
}

} // namespace

int
main(int, char** argv)
{
    const double secs = bench_seconds();
    const std::string serve_bin = serve_bin_path(argv[0]);
    print_header("ido-cluster scaling (real ido_serve processes, "
                 "4 routed clients, K=16 pipelined bursts, "
                 "2 sets / 14 gets per 16 requests)");
    std::printf("%-12s %12s %14s %14s %14s\n", "config", "Kreq/s",
                "burst_p50_us", "burst_p99_us", "burst_p999_us");
    for (uint32_t nodes : {1u, 2u, 4u}) {
        for (const bool repl : {false, true}) {
            const ClusterResult r =
                run_config(serve_bin, nodes, repl, secs);
            const std::string label = "n" + std::to_string(nodes) +
                                      (repl ? "_repl" : "_norepl");
            std::printf("%-12s %12.1f %14.1f %14.1f %14.1f\n",
                        label.c_str(), r.acks / r.seconds / 1e3,
                        r.burst_rtt.percentile(0.50) / 1e3,
                        r.burst_rtt.percentile(0.99) / 1e3,
                        r.burst_rtt.percentile(0.999) / 1e3);
            emit_json_row("cluster", label.c_str(), kClients, r.acks,
                          r.seconds, &r.burst_rtt);
        }
    }
    return 0;
}
