/**
 * @file
 * Figure 5 reproduction: Memcached throughput (millions of data
 * structure operations per second) as a function of thread count, for
 * the insertion-intensive (50% set / 50% get) and search-intensive
 * (10% set / 90% get) memaslap workloads, across all runtimes.
 *
 * Paper shape: iDO outperforms all FASE-based competitors by 2x or
 * more; Mnemosyne benefits from memcached 1.2.4's coarse locking; no
 * system scales past ~8 threads.  The persist-event profile column is
 * the machine-independent evidence: iDO's fences/op sit well below
 * Atlas's and far below JUSTDO's.
 *
 * IDO_BENCH_TRANSPORT=socket drives the same mixes through a real
 * ido-serve instance over loopback TCP (batch=1 so the protocol under
 * measurement stays the stock per-request one; bench_server owns the
 * group-commit ablation).  Default is the paper's in-process path.
 * Every printed row and JSON line states the transport used.
 */
#include <thread>

#include "apps/memcached_client.h"
#include "bench/bench_util.h"
#include "net/server.h"

using namespace ido;
using namespace ido::bench;

namespace {

apps::McTransport
transport_from_env()
{
    const char* s = std::getenv("IDO_BENCH_TRANSPORT");
    if (s && std::string(s) == "socket")
        return apps::McTransport::kSocket;
    return apps::McTransport::kInProcess;
}

} // namespace

int
main()
{
    const double secs = bench_seconds();
    const apps::McTransport transport = transport_from_env();
    struct Mix
    {
        const char* name;
        uint32_t set_pct;
    };
    const Mix mixes[] = {{"insertion-intensive (50/50)", 50},
                         {"search-intensive (10/90)", 10}};

    for (const Mix& mix : mixes) {
        print_header((std::string("Fig.5 memcached, ") + mix.name
                      + ", transport=" + apps::transport_name(transport))
                         .c_str());
        std::printf("%-10s %8s %10s %9s   %s\n", "runtime", "threads",
                    "Mops/s", "transport", "persist profile");
        // Every runtime at its stock configuration, plus the flush
        // elision ablation of iDO (ido_noelide): CI's fence-diet gate
        // compares the two iDO rows' flushes/op.
        struct RunCfg
        {
            baselines::RuntimeKind kind;
            const char* label;
            bool flush_elision;
        };
        std::vector<RunCfg> run_cfgs;
        for (auto kind : baselines::all_runtime_kinds())
            run_cfgs.push_back(
                {kind, baselines::runtime_kind_name(kind), true});
        run_cfgs.push_back(
            {baselines::RuntimeKind::kIdo, "ido_noelide", false});
        for (const RunCfg& rc : run_cfgs) {
            const auto kind = rc.kind;
            for (uint32_t threads : thread_sweep()) {
                BenchWorld world(kind, 512u << 20, 0, 4u << 20,
                                 rc.flush_elision);
                apps::MemcachedWorkloadConfig cfg;
                cfg.threads = threads;
                cfg.set_pct = mix.set_pct;
                cfg.key_space = 10000;
                cfg.duration_seconds = secs;
                cfg.transport = transport;

                apps::MemcachedWorkloadResult result;
                if (transport == apps::McTransport::kSocket) {
                    apps::MemcachedMini::register_programs();
                    net::ServerConfig scfg;
                    scfg.shards = static_cast<uint32_t>(cfg.nshards);
                    scfg.batch_limit = 1; // stock per-request protocol
                    scfg.nbuckets = static_cast<uint32_t>(cfg.nbuckets);
                    net::Server server(*world.runtime, scfg);
                    std::thread srv([&] { server.run(); });
                    cfg.port = server.port();
                    if (!apps::memcached_prefill_socket(cfg)) {
                        std::fprintf(stderr,
                                     "fig5: socket prefill failed\n");
                        server.stop();
                        srv.join();
                        return 1;
                    }
                    persist_counters_reset_global();
                    result = apps::memcached_run(*world.runtime, 0, cfg);
                    server.stop(); // joins shards: TLS counters flushed
                    srv.join();
                } else {
                    const uint64_t root =
                        apps::memcached_setup(*world.runtime, cfg);
                    persist_counters_reset_global();
                    result =
                        apps::memcached_run(*world.runtime, root, cfg);
                }
                std::printf("%-10s %8u %10.3f %9s   %s\n", rc.label,
                            threads, result.mops(),
                            apps::transport_name(transport),
                            persist_profile(result.total_ops).c_str());
                const std::string row_name =
                    std::string(mix.set_pct == 50
                                    ? "fig5_memcached_5050"
                                    : "fig5_memcached_1090")
                    + "_" + apps::transport_name(transport);
                emit_json_row(row_name.c_str(), rc.label, threads,
                              result.total_ops, secs);
            }
        }
    }
    return 0;
}
