/**
 * @file
 * Figure 5 reproduction: Memcached throughput (millions of data
 * structure operations per second) as a function of thread count, for
 * the insertion-intensive (50% set / 50% get) and search-intensive
 * (10% set / 90% get) memaslap workloads, across all runtimes.
 *
 * Paper shape: iDO outperforms all FASE-based competitors by 2x or
 * more; Mnemosyne benefits from memcached 1.2.4's coarse locking; no
 * system scales past ~8 threads.  The persist-event profile column is
 * the machine-independent evidence: iDO's fences/op sit well below
 * Atlas's and far below JUSTDO's.
 */
#include "apps/memcached_client.h"
#include "bench/bench_util.h"

using namespace ido;
using namespace ido::bench;

int
main()
{
    const double secs = bench_seconds();
    struct Mix
    {
        const char* name;
        uint32_t set_pct;
    };
    const Mix mixes[] = {{"insertion-intensive (50/50)", 50},
                         {"search-intensive (10/90)", 10}};

    for (const Mix& mix : mixes) {
        print_header(
            (std::string("Fig.5 memcached, ") + mix.name).c_str());
        std::printf("%-10s %8s %10s   %s\n", "runtime", "threads",
                    "Mops/s", "persist profile");
        for (auto kind : baselines::all_runtime_kinds()) {
            for (uint32_t threads : thread_sweep()) {
                BenchWorld world(kind);
                apps::MemcachedWorkloadConfig cfg;
                cfg.threads = threads;
                cfg.set_pct = mix.set_pct;
                cfg.key_space = 10000;
                cfg.duration_seconds = secs;
                const uint64_t root =
                    apps::memcached_setup(*world.runtime, cfg);
                persist_counters_reset_global();
                const auto result =
                    apps::memcached_run(*world.runtime, root, cfg);
                std::printf("%-10s %8u %10.3f   %s\n",
                            baselines::runtime_kind_name(kind),
                            threads, result.mops(),
                            persist_profile(result.total_ops).c_str());
                emit_json_row(mix.set_pct == 50 ? "fig5_memcached_5050"
                                                : "fig5_memcached_1090",
                              baselines::runtime_kind_name(kind),
                              threads, result.total_ops, secs);
            }
        }
    }
    return 0;
}
