/**
 * @file
 * Ablation: indirect locking (DESIGN.md Sec. 5).
 *
 * iDO's indirect lock holders let an acquire piggyback its ownership
 * record on the following boundary fence and a release pay exactly one
 * fence (Sec. III-B); JUSTDO's persistent-mutex protocol pays two
 * fences per lock operation (intention + ownership); Atlas pays one
 * ordered log append per operation plus a global sequence increment.
 * This harness isolates a lock/unlock round trip inside a minimal
 * FASE and reports time and persist events per round trip.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "runtime/runtime.h"

using namespace ido;
using namespace ido::bench;

namespace {

uint32_t
lock_region(rt::RuntimeThread& th, rt::RegionCtx& ctx)
{
    th.fase_lock(ctx.r[0]);
    return 1;
}

uint32_t
unlock_region(rt::RuntimeThread& th, rt::RegionCtx& ctx)
{
    th.fase_unlock(ctx.r[0]);
    return rt::kRegionEnd;
}

const rt::FaseProgram&
lock_pair_program()
{
    static const rt::FaseProgram prog = [] {
        rt::FaseProgram p;
        p.fase_id = 8001;
        p.name = "ablation.lockpair";
        p.regions = {
            {lock_region, "lock", 1, 0, 0, 0},
            {unlock_region, "unlock", 1, 0, 0, 0},
        };
        return p;
    }();
    return prog;
}

void
BM_LockRoundTrip(benchmark::State& state)
{
    const auto kind =
        static_cast<baselines::RuntimeKind>(state.range(0));
    BenchWorld world(kind, 64u << 20);
    auto th = world.runtime->make_thread();
    const uint64_t holder = th->nv_alloc(64);
    th->store_u64(holder, 0);
    persist_counters_reset_global();
    tls_persist_counters().clear();
    uint64_t ops = 0;
    Stopwatch clock;
    for (auto _ : state) {
        rt::RegionCtx ctx;
        ctx.r[0] = holder;
        th->run_fase(lock_pair_program(), ctx);
        ++ops;
    }
    const double secs = clock.elapsed_seconds();
    const PersistCounters& c = tls_persist_counters();
    state.counters["fences/op"] =
        benchmark::Counter(double(c.fences) / double(ops ? ops : 1));
    state.counters["flushes/op"] =
        benchmark::Counter(double(c.flushes) / double(ops ? ops : 1));
    state.SetLabel(baselines::runtime_kind_name(kind));
    persist_counters_flush_tls();
    // One row per benchmark run; warm-up runs append too, which a
    // JSON-lines file tolerates (consumers keep the last row per key).
    emit_json_row("ablation_locks", baselines::runtime_kind_name(kind),
                  1, ops, secs);
}

} // namespace

BENCHMARK(BM_LockRoundTrip)
    ->Arg(static_cast<int>(baselines::RuntimeKind::kIdo))
    ->Arg(static_cast<int>(baselines::RuntimeKind::kAtlas))
    ->Arg(static_cast<int>(baselines::RuntimeKind::kJustdo))
    ->Arg(static_cast<int>(baselines::RuntimeKind::kOrigin));

BENCHMARK_MAIN();
