/**
 * @file
 * Table II reproduction: the qualitative failure-atomic-system
 * property matrix, printed from live runtime trait introspection so
 * the table can never drift from the implementations.
 */
#include "bench/bench_util.h"

using namespace ido;
using namespace ido::bench;

int
main()
{
    print_header("Table II: failure-atomic systems and their "
                 "properties");
    std::printf("%-11s | %-22s | %-11s | %-18s | %-8s | %-9s\n",
                "System", "Region semantics", "Recovery",
                "Logging granularity", "DepTrack",
                "Transient$");
    std::printf("%.*s\n", 96,
                "---------------------------------------------------"
                "---------------------------------------------");
    nvm::PersistentHeap heap({.size = 16u << 20});
    nvm::RealDomain dom;
    rt::RuntimeConfig cfg;
    for (auto kind : baselines::all_runtime_kinds()) {
        auto runtime = baselines::make_runtime(kind, heap, dom, cfg);
        const rt::RuntimeTraits t = runtime->traits();
        std::printf("%-11s | %-22s | %-11s | %-18s | %-8s | %-9s\n",
                    runtime->name(), t.semantics, t.recovery,
                    t.granularity, t.dependence_tracking ? "Yes" : "No",
                    t.transient_caches ? "Yes" : "No");
        // Qualitative table: the row exists so every bench target
        // honours IDO_BENCH_JSON; ops/seconds carry no timing.
        emit_json_row("table2_properties",
                      baselines::runtime_kind_name(kind), 1, 0, 0.0);
    }
    return 0;
}
