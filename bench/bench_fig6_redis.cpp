/**
 * @file
 * Figure 6 reproduction: Redis throughput for databases with 10K,
 * 100K and 1M-element key ranges (lru_test client: 80% get / 20% put,
 * power-law keys), for iDO, Atlas, JUSTDO, NVML and Origin -- the
 * systems the paper integrates into Redis.
 *
 * Paper shape: iDO beats the other persistence systems at every key
 * range with 30-50% overhead vs. Origin, and the gap to Origin
 * *shrinks* as the database grows because the (idempotent, FASE-free)
 * search paths dominate; NVML beats Atlas here because Atlas's lock
 * instrumentation and dependence tracking buy nothing single-threaded.
 */
#include "apps/redis_client.h"
#include "bench/bench_util.h"

using namespace ido;
using namespace ido::bench;

int
main()
{
    const double secs = bench_seconds();
    const uint64_t ranges[] = {10000, 100000, 1000000};
    const char* range_names[] = {"10K", "100K", "1M"};

    const baselines::RuntimeKind kinds[] = {
        baselines::RuntimeKind::kIdo, baselines::RuntimeKind::kAtlas,
        baselines::RuntimeKind::kJustdo, baselines::RuntimeKind::kNvml,
        baselines::RuntimeKind::kOrigin};

    print_header("Fig.6 redis (80% get / 20% put, power-law keys, "
                 "transport=inproc)");
    if (const char* t = std::getenv("IDO_BENCH_TRANSPORT");
        t && std::string(t) == "socket")
        std::printf("note: ido-serve speaks only the memcached "
                    "protocol, so the redis workload has no socket "
                    "transport; running inproc.\n");
    std::printf("%-10s %8s %10s %9s   %s\n", "runtime", "range",
                "Mops/s", "transport", "persist profile");
    for (size_t r = 0; r < 3; ++r) {
        for (auto kind : kinds) {
            BenchWorld world(kind, 1536u << 20);
            apps::RedisWorkloadConfig cfg;
            cfg.key_range = ranges[r];
            cfg.duration_seconds = secs;
            cfg.nbuckets = 1u << 18;
            const uint64_t root =
                apps::redis_setup(*world.runtime, cfg);
            persist_counters_reset_global();
            const auto result =
                apps::redis_run(*world.runtime, root, cfg);
            std::printf("%-10s %8s %10.3f %9s   %s\n",
                        baselines::runtime_kind_name(kind),
                        range_names[r], result.mops(), "inproc",
                        persist_profile(result.total_ops).c_str());
            const std::string row =
                "fig6_redis_" + std::string(range_names[r]);
            emit_json_row(row.c_str(),
                          baselines::runtime_kind_name(kind), 1,
                          result.total_ops, secs);
        }
    }
    return 0;
}
