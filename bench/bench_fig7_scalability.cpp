/**
 * @file
 * Figure 7 reproduction: microbenchmark throughput (millions of data
 * structure operations per second) vs. thread count for the stack,
 * two-lock queue, hand-over-hand ordered list, and hash map, across
 * all runtimes (the JUSTDO-paper microbenchmarks, Sec. V-B).
 *
 * Paper shape: iDO matches or beats every FASE-based scheme in every
 * configuration, especially at high thread counts; Mnemosyne wins on
 * low-parallelism structures at low thread counts (it logs no lock
 * operations) but saturates; the hash map separates scalable (iDO)
 * from runtime-synchronization-bound (Atlas, Mnemosyne) designs.
 */
#include "bench/bench_util.h"
#include "ds/workload.h"

using namespace ido;
using namespace ido::bench;

int
main()
{
    const double secs = bench_seconds();
    const ds::DsKind structures[] = {
        ds::DsKind::kStack, ds::DsKind::kQueue,
        ds::DsKind::kOrderedList, ds::DsKind::kHashMap};

    for (const ds::DsKind s : structures) {
        print_header(
            (std::string("Fig.7 ") + ds::ds_kind_name(s)).c_str());
        std::printf("%-10s %8s %10s   %s\n", "runtime", "threads",
                    "Mops/s", "persist profile");
        for (auto kind : baselines::all_runtime_kinds()) {
            for (uint32_t threads : thread_sweep()) {
                BenchWorld world(kind);
                ds::WorkloadConfig cfg;
                cfg.ds = s;
                cfg.threads = threads;
                cfg.duration_seconds = secs;
                cfg.key_range = 512;
                cfg.map_buckets = 64;
                cfg.pin_threads = false;
                const uint64_t root =
                    ds::workload_setup(*world.runtime, cfg);
                persist_counters_reset_global();
                const auto result =
                    ds::workload_run(*world.runtime, root, cfg);
                std::printf("%-10s %8u %10.3f   %s\n",
                            baselines::runtime_kind_name(kind),
                            threads, result.mops(),
                            persist_profile(result.total_ops).c_str());
                emit_json_row(
                    (std::string("fig7_") + ds::ds_kind_name(s))
                        .c_str(),
                    baselines::runtime_kind_name(kind), threads,
                    result.total_ops, secs);
            }
        }
    }
    return 0;
}
