/**
 * @file
 * Shared scaffolding for the figure/table reproduction harnesses:
 * world construction, runtime/thread sweeps, and paper-style table
 * printing.  Every harness prints, alongside measured throughput, the
 * persist-event profile per operation (fences, cache-line
 * write-backs, log bytes) -- the deterministic, hardware-independent
 * signature of each system's protocol that underlies the paper's
 * performance ordering.
 *
 * Environment knobs:
 *   IDO_BENCH_SECONDS   duration per configuration (default 0.3)
 *   IDO_BENCH_THREADS   max worker threads (default: 8)
 *   IDO_BENCH_JSON      directory: append one JSON line per measured
 *                       configuration to $IDO_BENCH_JSON/BENCH_<bench>
 *                       .json, embedding the full MetricsRegistry
 *                       snapshot (counters + histograms)
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/runtime_factory.h"
#include "nvm/persist_domain.h"
#include "nvm/persistent_heap.h"
#include "stats/metrics.h"
#include "stats/persist_stats.h"

namespace ido::bench {

inline double
bench_seconds()
{
    if (const char* s = std::getenv("IDO_BENCH_SECONDS"))
        return std::atof(s);
    return 0.3;
}

inline std::vector<uint32_t>
thread_sweep()
{
    uint32_t max_threads = 8;
    if (const char* s = std::getenv("IDO_BENCH_THREADS"))
        max_threads = static_cast<uint32_t>(std::atoi(s));
    std::vector<uint32_t> sweep;
    for (uint32_t t = 1; t <= max_threads; t *= 2)
        sweep.push_back(t);
    return sweep;
}

/** Heap + domain + runtime bundle for one measured configuration. */
struct BenchWorld
{
    explicit BenchWorld(baselines::RuntimeKind kind,
                        size_t heap_bytes = 512u << 20,
                        uint32_t flush_delay_ns = 0,
                        size_t log_bytes = 4u << 20,
                        bool flush_elision = true)
        : heap({.size = heap_bytes}), dom(flush_delay_ns)
    {
        rt::RuntimeConfig cfg;
        cfg.log_bytes_per_thread = log_bytes;
        // Elision-ablation worlds (CI's fence-reduction gate compares
        // them against the stock ones) switch the runtime half of
        // ido-verify off: no covered stores, no boundary line dedup.
        cfg.flush_elision = flush_elision;
        runtime = baselines::make_runtime(kind, heap, dom, cfg);
        persist_counters_reset_global();
    }

    nvm::PersistentHeap heap;
    nvm::RealDomain dom;
    std::unique_ptr<rt::Runtime> runtime;
};

/** "fences/op=12.0 flushes/op=8.1 logB/op=64" for the last run. */
inline std::string
persist_profile(uint64_t ops)
{
    const PersistCounters c = persist_counters_global();
    char buf[128];
    if (ops == 0)
        ops = 1;
    std::snprintf(buf, sizeof(buf),
                  "fences/op=%6.2f flushes/op=%6.2f logB/op=%7.1f",
                  double(c.fences) / double(ops),
                  double(c.flushes) / double(ops),
                  double(c.log_bytes) / double(ops));
    return buf;
}

inline void
print_header(const char* title)
{
    std::printf("\n=== %s ===\n", title);
}

/**
 * Append one machine-readable result row (JSON-lines) for the
 * configuration just measured.  No-op unless IDO_BENCH_JSON names a
 * directory.  persist_counters_flush_tls() must already have run on
 * the workers (workload_run joins them, so it has), since the embedded
 * metrics snapshot reads the global registry.
 */
inline void
emit_json_row(const char* bench, const char* runtime, uint32_t threads,
              uint64_t ops, double seconds,
              const LatencyHistogram* lat = nullptr)
{
    const char* dir = std::getenv("IDO_BENCH_JSON");
    if (!dir || !*dir)
        return;
    const std::string path =
        std::string(dir) + "/BENCH_" + bench + ".json";
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (!f)
        return;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"bench\":\"%s\",\"runtime\":\"%s\","
                  "\"threads\":%u,\"ops\":%llu,\"seconds\":%.6f,",
                  bench, runtime, threads,
                  static_cast<unsigned long long>(ops), seconds);
    std::fputs(head, f);
    if (lat != nullptr && lat->total() > 0) {
        // Per-op latency percentiles (ido-stat): the Fig. 9 latency
        // sweep and bench_server record request latencies into a
        // LatencyHistogram and publish them alongside throughput.
        std::snprintf(head, sizeof(head),
                      "\"lat\":{\"count\":%llu,\"mean_ns\":%.1f,"
                      "\"p50_ns\":%llu,\"p90_ns\":%llu,"
                      "\"p99_ns\":%llu,\"p999_ns\":%llu,"
                      "\"max_ns\":%llu},",
                      static_cast<unsigned long long>(lat->total()),
                      lat->mean(),
                      static_cast<unsigned long long>(
                          lat->percentile(0.50)),
                      static_cast<unsigned long long>(
                          lat->percentile(0.90)),
                      static_cast<unsigned long long>(
                          lat->percentile(0.99)),
                      static_cast<unsigned long long>(
                          lat->percentile(0.999)),
                      static_cast<unsigned long long>(
                          lat->max_value()));
        std::fputs(head, f);
    }
    std::fputs("\"metrics\":", f);
    const std::string metrics = MetricsRegistry::instance().format_json();
    std::fwrite(metrics.data(), 1, metrics.size(), f);
    std::fputs("}\n", f);
    std::fclose(f);
}

} // namespace ido::bench
