/**
 * @file
 * Figure 9 reproduction: sensitivity to NVM write latency.  As in the
 * paper (and in Mnemosyne/Atlas before it), a configurable delay is
 * inserted after each cache-line write-back to "NVM", emulating slow
 * persistent media or a long data path; the sweep covers 20-2000 ns.
 *
 * Workloads reprise the paper's two data points: the
 * insertion-intensive memcached mix and the "large" (1M-key) redis
 * configuration.
 *
 * Paper shape: iDO and Atlas hold their throughput up to ~100 ns and
 * degrade beyond; JUSTDO suffers 1.5-2x slowdown already at 20 ns
 * because it issues so many more ordered write-backs per operation.
 */
#include "apps/memcached_client.h"
#include "apps/redis_client.h"
#include "bench/bench_util.h"

using namespace ido;
using namespace ido::bench;

int
main()
{
    const double secs = bench_seconds();
    const uint32_t delays[] = {0, 20, 100, 500, 2000};
    const baselines::RuntimeKind kinds[] = {
        baselines::RuntimeKind::kIdo, baselines::RuntimeKind::kAtlas,
        baselines::RuntimeKind::kJustdo};

    print_header("Fig.9a memcached (insertion mix, 4 threads) vs "
                 "NVM latency");
    std::printf("%-10s %8s %10s %10s %10s %10s\n", "runtime",
                "delay_ns", "Mops/s", "p50_us", "p99_us", "p999_us");
    for (auto kind : kinds) {
        for (uint32_t delay : delays) {
            BenchWorld world(kind, 512u << 20, 0);
            apps::MemcachedWorkloadConfig cfg;
            cfg.threads = 4;
            cfg.set_pct = 50;
            cfg.duration_seconds = secs;
            cfg.measure_latency = true;
            const uint64_t root =
                apps::memcached_setup(*world.runtime, cfg);
            world.dom.set_flush_delay_ns(delay); // measure only
            const auto result =
                apps::memcached_run(*world.runtime, root, cfg);
            std::printf("%-10s %8u %10.3f %10.1f %10.1f %10.1f\n",
                        baselines::runtime_kind_name(kind), delay,
                        result.mops(),
                        result.latency.percentile(0.50) / 1e3,
                        result.latency.percentile(0.99) / 1e3,
                        result.latency.percentile(0.999) / 1e3);
            // The latency sweep lives in the runtime label so every
            // row of the figure lands in one BENCH_ file.
            const std::string label =
                std::string(baselines::runtime_kind_name(kind)) + "_d"
                + std::to_string(delay);
            emit_json_row("fig9a_memcached", label.c_str(),
                          cfg.threads, result.total_ops, secs,
                          &result.latency);
        }
    }

    print_header("Fig.9b redis (1M keys) vs NVM latency");
    std::printf("%-10s %8s %10s %10s %10s %10s\n", "runtime",
                "delay_ns", "Mops/s", "p50_us", "p99_us", "p999_us");
    for (auto kind : kinds) {
        for (uint32_t delay : delays) {
            BenchWorld world(kind, 1536u << 20, 0);
            apps::RedisWorkloadConfig cfg;
            cfg.key_range = 1000000;
            cfg.nbuckets = 1u << 18;
            cfg.duration_seconds = secs;
            cfg.measure_latency = true;
            const uint64_t root =
                apps::redis_setup(*world.runtime, cfg);
            world.dom.set_flush_delay_ns(delay); // measure only
            const auto result =
                apps::redis_run(*world.runtime, root, cfg);
            std::printf("%-10s %8u %10.3f %10.1f %10.1f %10.1f\n",
                        baselines::runtime_kind_name(kind), delay,
                        result.mops(),
                        result.latency.percentile(0.50) / 1e3,
                        result.latency.percentile(0.99) / 1e3,
                        result.latency.percentile(0.999) / 1e3);
            const std::string label =
                std::string(baselines::runtime_kind_name(kind)) + "_d"
                + std::to_string(delay);
            emit_json_row("fig9b_redis", label.c_str(), 1,
                          result.total_ops, secs, &result.latency);
        }
    }
    return 0;
}
