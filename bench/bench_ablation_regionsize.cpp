/**
 * @file
 * Ablation: region granularity (DESIGN.md Sec. 5) -- the paper's core
 * performance argument quantified.
 *
 * A FASE performing 16 persistent stores is partitioned into k
 * regions, k in {1, 2, 4, 8, 16}.  iDO pays 2 fences per region, so
 * its cost scales with k, not with the store count; at k = 16 (one
 * store per region) it degenerates to store-granularity logging.
 * Atlas and JUSTDO pay per store regardless of k, bounding the two
 * ends of the spectrum.  This is why longer idempotent regions --
 * "tens of instructions in our benchmarks; hundreds or even thousands
 * in larger applications" -- translate directly into throughput.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "runtime/runtime.h"

using namespace ido;
using namespace ido::bench;

namespace {

constexpr uint64_t kTotalStores = 16;

// ctx.r[0] = data base offset; ctx.r[1] = stores per region;
// ctx.r[2] = number of regions.  Each region writes its own disjoint
// line-spaced slice, so regions are trivially idempotent.
uint32_t
store_region(rt::RuntimeThread& th, rt::RegionCtx& ctx)
{
    const uint64_t idx = th.current_region();
    const uint64_t per = ctx.r[1];
    const uint64_t base = ctx.r[0] + idx * per * 64;
    for (uint64_t i = 0; i < per; ++i)
        th.store_u64(base + i * 64, idx * 1000 + i);
    const uint64_t next = idx + 1;
    return next < ctx.r[2] ? static_cast<uint32_t>(next)
                           : rt::kRegionEnd;
}

rt::FaseProgram
make_program(uint32_t id, uint32_t k)
{
    rt::FaseProgram p;
    p.fase_id = id;
    p.name = "ablation.regionsize";
    for (uint32_t r = 0; r < k; ++r)
        p.regions.push_back(
            {store_region, "slice", 0x7 /*r0..r2*/, 0, 0, 0});
    return p;
}

void
BM_RegionGranularity(benchmark::State& state)
{
    const auto kind =
        static_cast<baselines::RuntimeKind>(state.range(0));
    const uint32_t k = static_cast<uint32_t>(state.range(1));
    BenchWorld world(kind, 64u << 20);
    auto th = world.runtime->make_thread();
    const uint64_t data = th->nv_alloc(kTotalStores * 64 + 64);

    static std::map<uint32_t, rt::FaseProgram> programs;
    if (programs.find(k) == programs.end())
        programs.emplace(k, make_program(8100 + k, k));
    const rt::FaseProgram& prog = programs.at(k);

    tls_persist_counters().clear();
    uint64_t ops = 0;
    Stopwatch clock;
    for (auto _ : state) {
        rt::RegionCtx ctx;
        ctx.r[0] = data;
        ctx.r[1] = kTotalStores / k;
        ctx.r[2] = k;
        th->run_fase(prog, ctx);
        ++ops;
    }
    const PersistCounters& c = tls_persist_counters();
    state.counters["fences/op"] =
        benchmark::Counter(double(c.fences) / double(ops ? ops : 1));
    state.SetLabel(std::string(baselines::runtime_kind_name(kind))
                   + " k=" + std::to_string(k));
    persist_counters_flush_tls();
    const std::string label =
        std::string(baselines::runtime_kind_name(kind)) + "_k"
        + std::to_string(k);
    emit_json_row("ablation_regionsize", label.c_str(), 1, ops,
                  clock.elapsed_seconds());
}

} // namespace

BENCHMARK(BM_RegionGranularity)
    ->ArgsProduct({{static_cast<int>(baselines::RuntimeKind::kIdo),
                    static_cast<int>(baselines::RuntimeKind::kAtlas),
                    static_cast<int>(baselines::RuntimeKind::kJustdo)},
                   {1, 2, 4, 8, 16}});

BENCHMARK_MAIN();
