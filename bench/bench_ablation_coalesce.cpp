/**
 * @file
 * Ablation: persist coalescing (paper Sec. IV-B, DESIGN.md Sec. 5).
 *
 * Because every register has a fixed slot in intRF, up to eight
 * 64-bit outputs share one cache line and persist with a single
 * write-back.  The same eight outputs scattered across both RF lines
 * need two.  Atlas, for contrast, writes a 32-byte log entry per
 * store: at most two entries per line.  This harness runs a FASE with
 * eight register outputs under iDO with (a) packed slots 0-7 and
 * (b) slots split 0-3/8-11, and reports flushes per FASE.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "ido/ido_runtime.h"

using namespace ido;
using namespace ido::bench;

namespace {

constexpr uint16_t kPacked = 0x00ff;  // slots 0..7: one RF line
constexpr uint16_t kSplit = 0x0f0f;   // slots 0..3 and 8..11: two lines

uint32_t
define_packed(rt::RuntimeThread&, rt::RegionCtx& ctx)
{
    for (int i = 0; i < 8; ++i)
        ctx.r[i] = i + 1;
    return 1;
}

uint32_t
define_split(rt::RuntimeThread&, rt::RegionCtx& ctx)
{
    for (int i = 0; i < 4; ++i) {
        ctx.r[i] = i + 1;
        ctx.r[i + 8] = i + 100;
    }
    return 1;
}

uint32_t
consume(rt::RuntimeThread&, rt::RegionCtx&)
{
    return rt::kRegionEnd;
}

rt::FaseProgram
make_program(uint32_t id, rt::RegionFn def, uint16_t mask)
{
    rt::FaseProgram p;
    p.fase_id = id;
    p.name = "ablation.coalesce";
    p.regions = {
        {def, "def", 0, mask, 0, 0},
        {consume, "use", mask, 0, 0, 0},
    };
    return p;
}

void
run_variant(benchmark::State& state, const rt::FaseProgram& prog,
            const char* label)
{
    nvm::PersistentHeap heap({.size = 64u << 20});
    nvm::RealDomain dom;
    rt::RuntimeConfig cfg;
    IdoRuntime runtime(heap, dom, cfg);
    auto th = runtime.make_thread();
    tls_persist_counters().clear();
    uint64_t ops = 0;
    Stopwatch clock;
    for (auto _ : state) {
        rt::RegionCtx ctx;
        th->run_fase(prog, ctx);
        ++ops;
    }
    const double secs = clock.elapsed_seconds();
    const PersistCounters& c = tls_persist_counters();
    state.counters["flushes/op"] =
        benchmark::Counter(double(c.flushes) / double(ops ? ops : 1));
    state.counters["fences/op"] =
        benchmark::Counter(double(c.fences) / double(ops ? ops : 1));
    persist_counters_flush_tls();
    emit_json_row("ablation_coalesce", label, 1, ops, secs);
}

void
BM_CoalescePacked(benchmark::State& state)
{
    static const rt::FaseProgram prog =
        make_program(8002, define_packed, kPacked);
    run_variant(state, prog, "packed");
}

void
BM_CoalesceSplit(benchmark::State& state)
{
    static const rt::FaseProgram prog =
        make_program(8003, define_split, kSplit);
    run_variant(state, prog, "split");
}

} // namespace

BENCHMARK(BM_CoalescePacked);
BENCHMARK(BM_CoalesceSplit);

BENCHMARK_MAIN();
