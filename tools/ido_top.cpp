/**
 * @file
 * ido_top: live terminal view of a running ido_serve.
 *
 * Polls the admin endpoint's /stats.json at a fixed interval and
 * renders, per frame:
 *  - throughput (requests/s) and fences/op, computed as deltas between
 *    consecutive frames (counters are cumulative);
 *  - per-op latency percentiles (p50/p99/p999) straight from the
 *    server's live recorders -- cumulative since server start, which
 *    is what the recorders expose;
 *  - per-shard queue depth and connection/pending-bytes gauges.
 *
 * JSON handling is a deliberately tiny scanner over the flat schema
 * MetricsRegistry::format_json() emits ("name":value and
 * "name":{"k":v,...}); it does not parse general JSON and never needs
 * to.
 *
 * Usage:
 *   ido_top --port=N[,N,...] [--host=127.0.0.1] [--interval-ms=1000]
 *           [--frames=0] [--raw]
 *
 * --frames=0 polls forever (^C to quit); --raw dumps the fetched JSON
 * instead of the rendered table (CI smoke uses --frames=2 --raw).
 *
 * A comma-separated --port list switches to cluster mode (ido-cluster):
 * one row per node's admin endpoint plus a TOTAL rollup -- summed
 * throughput/connections, worst-node p99, and the cluster.* replica
 * forwarding counters where a node publishes them.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/admin.h"

using namespace ido;

namespace {

bool
parse_flag(const char* arg, const char* name, std::string* out)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

/**
 * Extract every "name":<number> pair from the flat metrics JSON into
 * *out, flattening one nesting level: {"net.lat.req.get":{"p50_ns":7}}
 * yields "net.lat.req.get.p50_ns".  Quoted string values are skipped.
 */
void
scan_numbers(const std::string& json,
             std::map<std::string, double>* out)
{
    std::vector<std::string> stack;
    size_t i = 0;
    while (i < json.size()) {
        if (json[i] != '"') {
            if (json[i] == '}' && !stack.empty())
                stack.pop_back();
            ++i;
            continue;
        }
        const size_t kend = json.find('"', i + 1);
        if (kend == std::string::npos)
            return;
        const std::string key = json.substr(i + 1, kend - i - 1);
        i = kend + 1;
        if (i >= json.size() || json[i] != ':')
            continue;
        ++i;
        if (i >= json.size())
            return;
        if (json[i] == '{') {
            stack.push_back(key);
            ++i;
            continue;
        }
        if (json[i] == '"') { // string value: skip it
            const size_t vend = json.find('"', i + 1);
            if (vend == std::string::npos)
                return;
            i = vend + 1;
            continue;
        }
        char* end = nullptr;
        const double v = std::strtod(json.c_str() + i, &end);
        if (end == json.c_str() + i)
            continue;
        i = static_cast<size_t>(end - json.c_str());
        std::string full;
        for (const std::string& s : stack) {
            // The top-level section names ("counters", "latencies",
            // ...) are schema, not metric name.
            if (s == "counters" || s == "gauges" || s == "latencies"
                || s == "histograms")
                continue;
            full += s + ".";
        }
        full += key;
        (*out)[full] = v;
    }
}

double
get(const std::map<std::string, double>& m, const std::string& k)
{
    auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
}

void
render(const std::map<std::string, double>& cur,
       const std::map<std::string, double>& prev, double dt_s,
       uint64_t frame)
{
    const double req_delta = get(cur, "net.requests")
                             - get(prev, "net.requests");
    const double fence_delta = get(cur, "persist.fences")
                               - get(prev, "persist.fences");
    const double rps = dt_s > 0 ? req_delta / dt_s : 0.0;
    const double fpo = req_delta > 0 ? fence_delta / req_delta : 0.0;

    std::printf("--- frame %llu ---------------------------------------\n",
                static_cast<unsigned long long>(frame));
    std::printf("throughput %10.0f req/s    fences/op %5.2f    "
                "conns %.0f    pending %.0f B\n",
                rps, fpo, get(cur, "net.conns"),
                get(cur, "net.pending_out_bytes"));
    std::printf("%-10s %10s %12s %12s %12s\n", "op", "count",
                "p50(us)", "p99(us)", "p999(us)");
    for (const char* op : { "get", "set", "delete" }) {
        const std::string base = std::string("net.lat.req.") + op;
        if (get(cur, base + ".count") == 0)
            continue;
        std::printf("%-10s %10.0f %12.1f %12.1f %12.1f\n", op,
                    get(cur, base + ".count"),
                    get(cur, base + ".p50_ns") / 1e3,
                    get(cur, base + ".p99_ns") / 1e3,
                    get(cur, base + ".p999_ns") / 1e3);
    }
    for (const char* phase : { "queue", "exec", "publish" }) {
        const std::string base = std::string("net.lat.") + phase;
        if (get(cur, base + ".count") == 0)
            continue;
        std::printf("%-10s %10.0f %12.1f %12.1f %12.1f\n", phase,
                    get(cur, base + ".count"),
                    get(cur, base + ".p50_ns") / 1e3,
                    get(cur, base + ".p99_ns") / 1e3,
                    get(cur, base + ".p999_ns") / 1e3);
    }
    // Heap occupancy: live/free split, fragmentation share of the
    // consumed arena (served in ppm), and what the last GC run saw.
    std::printf("heap live %.0f blk / free %.0f blk    frag %5.2f%%    "
                "gc leaks %.0f (%.0f B)  retired %.0f chunks\n",
                get(cur, "nvheap.live_blocks_est"),
                get(cur, "nvheap.free_pool_blocks_est"),
                get(cur, "heap.fragmentation") / 1e4,
                get(cur, "heap.gc.leaked_blocks"),
                get(cur, "heap.gc.leaked_bytes"),
                get(cur, "heap.gc.chunks_retired"));
    std::string depths;
    for (int s = 0; s < 16; ++s) {
        const std::string k =
            "net.shard." + std::to_string(s) + ".queue_depth";
        if (cur.find(k) == cur.end())
            break;
        depths += (s ? " " : "") + std::to_string(
                      static_cast<uint64_t>(get(cur, k)));
    }
    if (!depths.empty())
        std::printf("shard queue depth: [%s]\n", depths.c_str());
    std::fflush(stdout);
}

/**
 * Cluster mode: one row per node plus a TOTAL rollup.  Counters sum;
 * latency percentiles do not, so TOTAL reports the *worst* node p99 --
 * the number a cluster operator actually pages on.
 */
void
render_cluster(const std::vector<std::map<std::string, double>>& cur,
               const std::vector<std::map<std::string, double>>& prev,
               const std::vector<uint16_t>& ports, double dt_s,
               uint64_t frame)
{
    std::printf("--- frame %llu (cluster, %zu nodes) ------------------\n",
                static_cast<unsigned long long>(frame),
                ports.size());
    std::printf("%-10s %12s %10s %7s %12s %12s %12s\n", "node", "req/s",
                "fences/op", "conns", "get p99(us)", "set p99(us)",
                "repl batch/s");
    double tot_rps = 0, tot_conns = 0, tot_rep = 0;
    double worst_get = 0, worst_set = 0;
    for (size_t i = 0; i < cur.size(); ++i) {
        const auto& c = cur[i];
        const auto& p = prev[i];
        const double req_delta =
            get(c, "net.requests") - get(p, "net.requests");
        const double fence_delta =
            get(c, "persist.fences") - get(p, "persist.fences");
        const double rep_delta = get(c, "cluster.replica.batches")
                                 - get(p, "cluster.replica.batches");
        const double rps = dt_s > 0 ? req_delta / dt_s : 0.0;
        const double reps = dt_s > 0 ? rep_delta / dt_s : 0.0;
        const double g99 = get(c, "net.lat.req.get.p99_ns") / 1e3;
        const double s99 = get(c, "net.lat.req.set.p99_ns") / 1e3;
        std::printf(":%-9u %12.0f %10.2f %7.0f %12.1f %12.1f %12.0f\n",
                    ports[i], rps,
                    req_delta > 0 ? fence_delta / req_delta : 0.0,
                    get(c, "net.conns"), g99, s99, reps);
        tot_rps += rps;
        tot_conns += get(c, "net.conns");
        tot_rep += reps;
        worst_get = std::max(worst_get, g99);
        worst_set = std::max(worst_set, s99);
    }
    std::printf("%-10s %12.0f %10s %7.0f %12.1f %12.1f %12.0f\n",
                "TOTAL", tot_rps, "-", tot_conns, worst_get, worst_set,
                tot_rep);
    std::fflush(stdout);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: ido_top --port=N[,N,...] [--host=127.0.0.1]\n"
                 "               [--interval-ms=1000] [--frames=0] "
                 "[--raw]\n"
                 "(host must be 127.0.0.1; the admin endpoint only "
                 "binds loopback)\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<uint16_t> ports;
    uint64_t interval_ms = 1000;
    uint64_t frames = 0;
    bool raw = false;
    std::string host = "127.0.0.1";

    for (int i = 1; i < argc; ++i) {
        std::string val;
        if (parse_flag(argv[i], "--port", &val)) {
            size_t at = 0;
            while (at <= val.size()) {
                const size_t comma = val.find(',', at);
                const std::string tok = val.substr(
                    at, comma == std::string::npos ? std::string::npos
                                                   : comma - at);
                const uint64_t p =
                    std::strtoull(tok.c_str(), nullptr, 10);
                if (p == 0 || p > 65535)
                    return usage();
                ports.push_back(static_cast<uint16_t>(p));
                if (comma == std::string::npos)
                    break;
                at = comma + 1;
            }
        } else if (parse_flag(argv[i], "--host", &val))
            host = val;
        else if (parse_flag(argv[i], "--interval-ms", &val))
            interval_ms = std::strtoull(val.c_str(), nullptr, 10);
        else if (parse_flag(argv[i], "--frames", &val))
            frames = std::strtoull(val.c_str(), nullptr, 10);
        else if (std::strcmp(argv[i], "--raw") == 0)
            raw = true;
        else
            return usage();
    }
    if (ports.empty() || host != "127.0.0.1")
        return usage();

    std::vector<std::map<std::string, double>> prev(ports.size());
    auto t_prev = std::chrono::steady_clock::now();
    for (uint64_t frame = 0; frames == 0 || frame < frames; ++frame) {
        if (frame != 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
        std::vector<std::map<std::string, double>> cur(ports.size());
        for (size_t n = 0; n < ports.size(); ++n) {
            std::string body;
            if (!net::admin_http_get(ports[n], "/stats.json", &body)) {
                std::fprintf(stderr,
                             "ido_top: GET 127.0.0.1:%u/stats.json "
                             "failed\n",
                             ports[n]);
                return 1;
            }
            if (raw) {
                std::printf("%s\n", body.c_str());
                std::fflush(stdout);
                continue;
            }
            scan_numbers(body, &cur[n]);
        }
        if (raw)
            continue;
        const auto t_now = std::chrono::steady_clock::now();
        const double dt_s = frame == 0
                                ? 0.0
                                : std::chrono::duration<double>(
                                      t_now - t_prev)
                                      .count();
        if (ports.size() == 1)
            render(cur[0], prev[0], dt_s, frame);
        else
            render_cluster(cur, prev, ports, dt_s, frame);
        prev.swap(cur);
        t_prev = t_now;
    }
    return 0;
}
