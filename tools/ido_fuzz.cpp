/**
 * @file
 * ido-fuzz: systematic crash-point x interleaving fuzzer with
 * deterministic record/replay.
 *
 *   ido_fuzz --runs N [--seed S] [--out DIR] [--runtimes ido,atlas]
 *       Sweep N seeded samples; every failing sample is saved as a
 *       .rec artifact under DIR.  Exit 1 if any sample failed.
 *
 *   ido_fuzz --replay FILE [--repeat K]
 *       Re-run a recorded sample K times (default 1) and require each
 *       replay to reproduce the recording bit-for-bit (same crash,
 *       same outcome, same image hashes, same sync-op sequence).
 *       Exit 1 on any mismatch.
 *
 *   ido_fuzz --replay-corpus DIR [--repeat K]
 *       Replay every .rec under DIR; this is the replay_corpus ctest.
 *
 *   ido_fuzz --record-case pending_line --out FILE
 *       Record the scripted pending-line regression scenario into FILE
 *       (used to regenerate the checked-in corpus entry).
 */
#include <dirent.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/runtime_factory.h"
#include "common/rng.h"
#include "fuzz/artifact.h"
#include "fuzz/fuzz_driver.h"

namespace {

using namespace ido;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ido_fuzz --runs N [--seed S] [--out DIR] [--runtimes a,b]\n"
        "       ido_fuzz --replay FILE [--repeat K]\n"
        "       ido_fuzz --replay-corpus DIR [--repeat K]\n"
        "       ido_fuzz --record-case pending_line --out FILE\n");
    return 2;
}

/** One replay round against a loaded recording; prints and returns
 *  whether it reproduced. */
bool
replay_once(const fuzz::Recording& source, const std::string& label,
            int round)
{
    const fuzz::Recording replayed = fuzz::run_case_replay(source);
    std::string why;
    if (fuzz::replay_matches(source, replayed, &why)) {
        std::printf("[ido-fuzz] %s replay %d: reproduced (%s%s)\n",
                    label.c_str(), round,
                    fuzz::outcome_name(replayed.outcome),
                    replayed.crashed ? ", crashed" : "");
        return true;
    }
    std::fprintf(stderr, "[ido-fuzz] %s replay %d: MISMATCH: %s\n",
                 label.c_str(), round, why.c_str());
    return false;
}

int
cmd_replay_file(const std::string& path, int repeat)
{
    fuzz::Recording source;
    if (!fuzz::load_recording(path, &source)) {
        std::fprintf(stderr, "[ido-fuzz] cannot load %s\n", path.c_str());
        return 1;
    }
    std::printf(
        "[ido-fuzz] %s: %s/%u threads=%u seed=%llu recorded=%s%s\n",
        path.c_str(), fuzz::workload_kind_name(source.fc.workload),
        source.fc.runtime, source.fc.threads,
        static_cast<unsigned long long>(source.fc.seed),
        fuzz::outcome_name(source.outcome),
        source.crashed ? " (crashed)" : "");
    int failures = 0;
    for (int i = 1; i <= repeat; ++i) {
        if (!replay_once(source, path, i))
            failures += 1;
    }
    return failures == 0 ? 0 : 1;
}

int
cmd_replay_corpus(const std::string& dir, int repeat)
{
    std::vector<std::string> files;
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) {
        std::fprintf(stderr, "[ido-fuzz] cannot open corpus dir %s\n",
                     dir.c_str());
        return 1;
    }
    while (dirent* e = readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() > 4
            && name.compare(name.size() - 4, 4, ".rec") == 0)
            files.push_back(dir + "/" + name);
    }
    closedir(d);
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "[ido-fuzz] corpus %s has no .rec files\n",
                     dir.c_str());
        return 1;
    }
    int rc = 0;
    for (const std::string& f : files)
        rc |= cmd_replay_file(f, repeat);
    return rc;
}

int
cmd_sweep(uint64_t seed, uint32_t runs, const std::string& out,
          const std::string& runtimes_csv, bool verbose)
{
    fuzz::SweepOptions opts;
    opts.master_seed = seed;
    opts.runs = runs;
    opts.out_dir = out;
    opts.verbose = verbose;
    if (!runtimes_csv.empty()) {
        size_t pos = 0;
        while (pos <= runtimes_csv.size()) {
            const size_t comma = runtimes_csv.find(',', pos);
            const std::string tok = runtimes_csv.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            if (!tok.empty())
                opts.runtimes.push_back(static_cast<uint32_t>(
                    baselines::runtime_kind_from_name(tok)));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    const fuzz::SweepResult result = fuzz::fuzz_sweep(opts);
    std::printf(
        "[ido-fuzz] sweep done: %u samples, %u crashed, %u failed\n",
        result.total, result.crashed, result.failures);
    for (const std::string& a : result.artifacts)
        std::printf("[ido-fuzz]   artifact: %s\n", a.c_str());
    return result.failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string replay_file, corpus_dir, out = ".", runtimes_csv;
    std::string record_case;
    uint64_t seed = 1;
    uint32_t runs = 0;
    int repeat = 1;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--runs")
            runs = static_cast<uint32_t>(std::strtoul(val(), nullptr, 0));
        else if (arg == "--seed")
            seed = std::strtoull(val(), nullptr, 0);
        else if (arg == "--out")
            out = val();
        else if (arg == "--runtimes")
            runtimes_csv = val();
        else if (arg == "--replay")
            replay_file = val();
        else if (arg == "--replay-corpus")
            corpus_dir = val();
        else if (arg == "--repeat")
            repeat = std::atoi(val());
        else if (arg == "--record-case")
            record_case = val();
        else if (arg == "--verbose" || arg == "-v")
            verbose = true;
        else
            return usage();
    }
    if (repeat < 1)
        repeat = 1;

    if (!record_case.empty()) {
        if (record_case != "pending_line") {
            std::fprintf(stderr, "[ido-fuzz] unknown case %s\n",
                         record_case.c_str());
            return 2;
        }
        const fuzz::Recording rec = fuzz::record_pending_line_case(seed);
        if (rec.outcome != fuzz::Outcome::kOk) {
            std::fprintf(stderr,
                         "[ido-fuzz] scenario did not pass on current "
                         "tree (%s: %s) -- not saving\n",
                         fuzz::outcome_name(rec.outcome),
                         rec.reason.c_str());
            return 1;
        }
        const std::string path = out + (out.find(".rec") == std::string::npos
                                            ? "/pending_line.rec"
                                            : "");
        if (!fuzz::save_recording(path, rec))
            return 1;
        std::printf("[ido-fuzz] recorded %s (%zu log entries)\n",
                    path.c_str(),
                    rec.logs.empty() ? size_t{0}
                                     : rec.logs[0].size() + rec.logs[1].size());
        return 0;
    }
    if (!replay_file.empty())
        return cmd_replay_file(replay_file, repeat);
    if (!corpus_dir.empty())
        return cmd_replay_corpus(corpus_dir, repeat);
    if (runs > 0)
        return cmd_sweep(seed, runs, out, runtimes_csv, verbose);
    return usage();
}
