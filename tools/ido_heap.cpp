/**
 * @file
 * ido_heap: offline heap maintenance CLI for NvHeap v2.
 *
 * Attaches to an ido heap file and runs the reachability GC against
 * it.  A dirty heap (crash flag set) is first taken through full iDO
 * recovery -- resumed FASEs retire their log records, which would
 * otherwise pin the heap -- unless --no-recover asks for a raw look.
 *
 * Subcommands:
 *   audit    read-only census + leak/dangling report.  Exit 1 when
 *            any unreachable-live block or dangling link is found.
 *   gc       audit + reclaim unreachable blocks (HeapGc::repair).
 *            Exit 1 if reclamation was refused (reachable opaque
 *            block) or findings remain.
 *   compact  gc, then relocate live blocks out of sparse chunks and
 *            retire the emptied chunks onto the reuse list.
 *   stats    census only, always exit 0 (monitoring-friendly).
 *   selftest build a throwaway heap in-process, run a churn workload
 *            through the iDO runtime, and exercise
 *            audit/repair/compact end to end (CI hook; no --heap).
 *
 * Usage:
 *   ido_heap <audit|gc|compact|stats> --heap=PATH [--heap-bytes=N]
 *            [--json] [--no-recover]
 *   ido_heap selftest [--json]
 *
 * --json prints the GcStats object as one JSON line (the CI churn
 * soak archives `ido_heap audit --json` as its artifact); otherwise a
 * human table plus the capped findings list is printed.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/memcached_mini.h"
#include "apps/redis_mini.h"
#include "ido/ido_runtime.h"
#include "nvm/heap_gc.h"
#include "nvm/persistent_heap.h"
#include "nvm/root_registry.h"

using namespace ido;

namespace {

bool
parse_flag(const char* arg, const char* name, std::string* out)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: ido_heap <audit|gc|compact|stats> --heap=PATH\n"
                 "                [--heap-bytes=N] [--json] "
                 "[--no-recover]\n"
                 "       ido_heap selftest [--json]\n");
    return 2;
}

void
print_human(const char* cmd, const nvm::GcStats& s)
{
    std::printf("== ido_heap %s ==\n", cmd);
    std::printf("%-22s %llu blocks / %llu bytes in %llu chunks\n",
                "census:",
                static_cast<unsigned long long>(s.blocks),
                static_cast<unsigned long long>(s.bytes),
                static_cast<unsigned long long>(s.chunks));
    std::printf("%-22s live %llu (%llu B)  free %llu  moved %llu\n",
                "states:",
                static_cast<unsigned long long>(s.live_blocks),
                static_cast<unsigned long long>(s.live_bytes),
                static_cast<unsigned long long>(s.free_blocks),
                static_cast<unsigned long long>(s.moved_blocks));
    std::printf("%-22s leaked %llu (%llu B)  dangling %llu  "
                "opaque %llu  pinned %llu\n",
                "findings:",
                static_cast<unsigned long long>(s.leaked_blocks),
                static_cast<unsigned long long>(s.leaked_bytes),
                static_cast<unsigned long long>(s.dangling_links),
                static_cast<unsigned long long>(s.opaque_live),
                static_cast<unsigned long long>(s.pinned_blocks));
    std::printf("%-22s reclaimed %llu (%llu B)  relocated %llu (%llu B)"
                "  retired %llu chunks  journal-resolved %llu\n",
                "actions:",
                static_cast<unsigned long long>(s.reclaimed_blocks),
                static_cast<unsigned long long>(s.reclaimed_bytes),
                static_cast<unsigned long long>(s.relocated_blocks),
                static_cast<unsigned long long>(s.relocated_bytes),
                static_cast<unsigned long long>(s.chunks_retired),
                static_cast<unsigned long long>(s.journal_resolved));
    if (s.repair_refused)
        std::printf("NOTE: reclamation refused (reachable opaque "
                    "block)\n");
    if (s.relocation_refused)
        std::printf("NOTE: relocation refused (pinned or opaque live "
                    "blocks); empty chunks still retired\n");
    for (const std::string& f : s.findings)
        std::printf("  - %s\n", f.c_str());
}

void
report(const char* cmd, const nvm::GcStats& s, bool json)
{
    if (json)
        std::printf("%s\n", s.to_json().c_str());
    else
        print_human(cmd, s);
    std::fflush(stdout);
}

/**
 * Exit policy per subcommand.  An audit fails on any leak; gc reports
 * the leaks it *found* in its stats, so reclaiming them is success and
 * only a refusal (or a dangling link, which nothing can repair) fails;
 * compact runs after reclamation and can legitimately refuse
 * relocation while pins exist, so only dangling links fail it.
 */
bool
clean(const std::string& cmd, const nvm::GcStats& s)
{
    if (s.dangling_links != 0)
        return false;
    if (cmd == "audit")
        return s.leaked_blocks == 0;
    if (cmd == "gc")
        return !s.repair_refused;
    return true; // compact
}

int
run_file_command(const std::string& cmd, const std::string& heap_path,
                 uint64_t heap_bytes, bool json, bool no_recover)
{
    nvm::PersistentHeap heap(
        { .path = heap_path, .size = heap_bytes, .reset = false });
    nvm::RealDomain dom;
    ido::IdoRuntime rt(heap, dom, rt::RuntimeConfig{});
    // The heap may hold app structures; their FASEs must be
    // registered before recovery can resume an interrupted one.
    apps::MemcachedMini::register_programs();
    apps::RedisMini::register_programs();

    const bool was_dirty = heap.recovered_from_crash();
    if (was_dirty && !no_recover)
        rt.recover();
    else if (was_dirty)
        std::fprintf(stderr,
                     "ido_heap: heap is dirty (crashed) and "
                     "--no-recover was given; expect pinned log "
                     "records\n");

    nvm::HeapGc gc(rt.allocator(), dom);
    nvm::GcStats s;
    if (cmd == "audit" || cmd == "stats")
        s = gc.audit();
    else if (cmd == "gc")
        s = gc.repair();
    else // compact (reclaims leaks first so their chunks can empty)
        s = gc.compact();
    nvm::HeapGc::publish(s);

    // A recovered-and-swept heap is consistent; record the clean
    // shutdown so the next attach skips recovery.  A dirty heap we
    // refused to recover keeps its crash flag.
    if (!was_dirty || !no_recover)
        heap.mark_clean(dom);

    report(cmd.c_str(), s, json);
    if (cmd == "stats")
        return 0;
    return clean(cmd, s) ? 0 : 1;
}

/**
 * In-process end-to-end exercise on a throwaway heap: churn a
 * memcached + redis corpus through the iDO runtime, verify the audit
 * is clean, plant typed leaks and reclaim them, then delete most of
 * the corpus and compact, checking every surviving key's value
 * afterwards.  Returns 0 on pass, 1 with a FAIL line on the first
 * violated expectation.
 */
int
run_selftest(bool json)
{
    int failures = 0;
    const auto expect = [&](bool ok, const char* what) {
        if (!ok) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ++failures;
        }
    };

    nvm::PersistentHeap heap({ .path = "", .size = 16u << 20 });
    nvm::RealDomain dom;
    ido::IdoRuntime rt(heap, dom, rt::RuntimeConfig{});
    apps::MemcachedMini::register_programs();
    apps::RedisMini::register_programs();
    // The selftest's leak blocks are typed leaves, so the GC can both
    // count and reclaim them without tripping the opaque veto.
    nvm::TypeDescriptor leak_desc;
    leak_desc.name = "heapcli.leak";
    nvm::TypeRegistry::instance().register_type(nvm::TypeId::kTestBlock,
                                                leak_desc);

    std::unique_ptr<rt::RuntimeThread> th = rt.make_thread();
    const uint64_t mc_root = apps::MemcachedMini::create(*th, 2, 64);
    nvm::RootRegistry::set_ref(heap, nvm::RootSlot::kAppRoot, mc_root,
                               dom);
    const uint64_t rd_root = apps::RedisMini::create(*th, 64);
    nvm::RootRegistry::set_ref(heap, nvm::RootSlot::kUser0, rd_root,
                               dom);

    apps::MemcachedMini cache(heap, mc_root);
    apps::RedisMini store(heap, rd_root);
    constexpr uint64_t kKeys = 400;
    for (uint64_t k = 0; k < kKeys; ++k) {
        cache.set(*th, k, k ^ 0x5a5a, k * 3 + 1);
        if (k % 2 == 0)
            store.set(*th, k, k + 1000);
    }
    for (uint64_t k = 0; k < kKeys; k += 3)
        cache.del(*th, k, k ^ 0x5a5a);

    nvm::HeapGc gc(rt.allocator(), dom);
    nvm::GcStats s = gc.audit();
    expect(s.leaked_blocks == 0, "clean corpus audits zero leaks");
    expect(s.dangling_links == 0, "clean corpus has no dangling links");
    expect(s.live_blocks > kKeys, "corpus blocks are all visible");

    // Plant typed leaks: allocated through the runtime, never rooted.
    constexpr uint64_t kLeaks = 8;
    for (uint64_t i = 0; i < kLeaks; ++i)
        expect(th->nv_alloc_as(nvm::TypeId::kTestBlock, 48 + i * 16)
                   != 0,
               "leak allocation succeeds");
    s = gc.audit();
    expect(s.leaked_blocks == kLeaks, "audit counts planted leaks");

    s = gc.repair();
    expect(!s.repair_refused, "typed corpus permits reclamation");
    expect(s.reclaimed_blocks == kLeaks, "repair reclaims the leaks");
    s = gc.audit();
    expect(s.leaked_blocks == 0, "post-repair audit is clean");

    // Empty out most chunks, then compact and re-verify content.
    for (uint64_t k = 0; k < kKeys; ++k)
        if (k % 3 != 0 && k % 16 != 1)
            cache.del(*th, k, k ^ 0x5a5a);
    for (uint64_t k = 0; k < kKeys; k += 2)
        if (k % 8 != 2)
            store.del(*th, k);
    s = gc.compact();
    expect(!s.relocation_refused, "quiescent heap permits relocation");
    expect(s.chunks_retired > 0, "compaction retires emptied chunks");
    expect(s.leaked_blocks == 0, "compaction census stays clean");
    // Compaction may relocate the root blocks themselves; transient
    // handles must be re-resolved from the rewritten root slots (the
    // quiescence contract every GC caller signs up to).
    const uint64_t mc_root2 =
        nvm::RootRegistry::get_ref(heap, nvm::RootSlot::kAppRoot);
    const uint64_t rd_root2 =
        nvm::RootRegistry::get_ref(heap, nvm::RootSlot::kUser0);
    apps::MemcachedMini cache2(heap, mc_root2);
    apps::RedisMini store2(heap, rd_root2);
    for (uint64_t k = 0; k < kKeys; ++k) {
        uint64_t v = 0;
        const bool hit = cache2.get(*th, k, k ^ 0x5a5a, &v);
        const bool want = k % 3 != 0 && k % 16 == 1;
        if (want)
            expect(hit && v == k * 3 + 1,
                   "surviving key intact after compaction");
        else
            expect(!hit, "deleted key stays deleted after compaction");
    }
    for (uint64_t k = 0; k < kKeys; k += 2) {
        uint64_t v = 0;
        const bool hit = store2.get(*th, k, &v);
        if (k % 8 == 2)
            expect(hit && v == k + 1000,
                   "surviving redis key intact after compaction");
        else
            expect(!hit,
                   "deleted redis key stays deleted after compaction");
    }
    expect(rt.allocator().check_consistency(),
           "allocator consistent after compaction");
    const nvm::GcStats after = gc.audit();
    expect(after.leaked_blocks == 0 && after.dangling_links == 0,
           "post-compaction audit is clean");
    expect(apps::MemcachedMini::check_invariants(heap, mc_root2),
           "memcached invariants hold after compaction");
    expect(apps::RedisMini::check_invariants(heap, rd_root2),
           "redis invariants hold after compaction");

    report("selftest", after, json);
    if (failures == 0)
        std::printf("selftest PASS\n");
    else
        std::printf("selftest FAIL (%d)\n", failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::string heap_path;
    uint64_t heap_bytes = 64u << 20;
    bool json = false;
    bool no_recover = false;

    for (int i = 2; i < argc; ++i) {
        std::string val;
        if (parse_flag(argv[i], "--heap", &val))
            heap_path = val;
        else if (parse_flag(argv[i], "--heap-bytes", &val))
            heap_bytes = std::strtoull(val.c_str(), nullptr, 10);
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--no-recover") == 0)
            no_recover = true;
        else
            return usage();
    }

    if (cmd == "selftest")
        return run_selftest(json);
    if (cmd != "audit" && cmd != "gc" && cmd != "compact"
        && cmd != "stats")
        return usage();
    if (heap_path.empty() || heap_bytes < (1u << 20))
        return usage();
    return run_file_command(cmd, heap_path, heap_bytes, json,
                            no_recover);
}
