/**
 * @file
 * ido_trace: convert and inspect ido-trace binary capture files.
 *
 * Usage: ido_trace [--chrome|--summary|--forensics|--dump] [-o OUT] FILE
 *   --chrome     emit Chrome trace-event / Perfetto JSON
 *                (load at chrome://tracing or ui.perfetto.dev)
 *   --summary    per-FASE latency and persist-traffic table (default)
 *   --forensics  post-crash timeline: durable log records next to the
 *                final events of the threads that owned them
 *   --dump       flat per-thread event listing
 *   -o OUT       write to OUT instead of stdout
 *
 * Exit status: 0 ok, 1 unreadable/corrupt trace, 2 usage error.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/trace_export.h"

namespace {

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--chrome|--summary|--forensics|--dump] "
                 "[-o OUT] FILE\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    enum class Mode
    {
        kSummary,
        kChrome,
        kForensics,
        kDump
    };
    Mode mode = Mode::kSummary;
    std::string out_path;
    std::string in_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--chrome") == 0) {
            mode = Mode::kChrome;
        } else if (std::strcmp(argv[i], "--summary") == 0) {
            mode = Mode::kSummary;
        } else if (std::strcmp(argv[i], "--forensics") == 0) {
            mode = Mode::kForensics;
        } else if (std::strcmp(argv[i], "--dump") == 0) {
            mode = Mode::kDump;
        } else if (std::strcmp(argv[i], "-o") == 0) {
            if (++i >= argc)
                return usage(argv[0]);
            out_path = argv[i];
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else if (in_path.empty()) {
            in_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (in_path.empty())
        return usage(argv[0]);

    ido::trace::TraceFile tf;
    std::string err;
    if (!ido::trace::read_trace_file(in_path, &tf, &err)) {
        std::fprintf(stderr, "ido_trace: %s: %s\n", in_path.c_str(),
                     err.c_str());
        return 1;
    }

    std::string text;
    switch (mode) {
    case Mode::kChrome:
        text = ido::trace::export_chrome_json(tf);
        break;
    case Mode::kSummary:
        text = ido::trace::format_fase_summary(tf);
        break;
    case Mode::kForensics:
        text = ido::trace::format_forensics(tf);
        break;
    case Mode::kDump:
        text = ido::trace::format_dump(tf);
        break;
    }

    if (out_path.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "ido_trace: cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return 0;
}
