/**
 * @file
 * ido-serve: the memcached-protocol server binary over the iDO FASE
 * runtime (src/net).  This is the process the kill -9 harness aims
 * at: a file-backed persistent heap, iDO recovery on reattach, and
 * group-persist batching of pipelined requests.
 *
 * Usage:
 *   ido_serve --heap=/path/cache.heap [--port=0] [--port-file=PATH]
 *             [--shards=4] [--batch=16] [--buckets=256]
 *             [--heap-bytes=67108864] [--reset]
 *             [--admin] [--admin-port=0] [--admin-port-file=PATH]
 *
 * With --admin (implied by either --admin-port or --admin-port-file)
 * a loopback HTTP endpoint serves /metrics (Prometheus), /stats.json,
 * /recovery (the structured recovery timeline) and /healthz off the
 * same epoll loop; `ido_top` and the CI scrape job poll it.
 *
 * Lifecycle:
 *   1. open the heap; if the previous instance died mid-run
 *      (recovered_from_crash), run iDO recovery: reacquire locks from
 *      the persistent indirect lock holders, restore contexts, resume
 *      every interrupted FASE to completion;
 *   2. bind, write the bound port to --port-file (the harness's
 *      readiness handshake), print LISTENING, serve;
 *   3. on SIGINT/SIGTERM, drain and mark the heap clean.
 *
 * A `quit`-less client disconnect, a kill -9, or a crash anywhere in
 * between leaves the heap recoverable by the next invocation.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/memcached_mini.h"
#include "cluster/port_file.h"
#include "ido/ido_runtime.h"
#include "net/server.h"
#include "nvm/persist_domain.h"
#include "nvm/persistent_heap.h"
#include "stats/recovery_timeline.h"
#include "stats/stat_plane.h"
#include "trace/trace.h"

using namespace ido;

namespace {

net::Server* g_server = nullptr;

void
on_signal(int)
{
    // EventLoop::stop() only writes an eventfd: async-signal-safe.
    if (g_server)
        g_server->stop();
}

bool
parse_flag(const char* arg, const char* name, std::string* out)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

uint64_t
parse_u64_or_die(const std::string& s, const char* what)
{
    char* end = nullptr;
    const uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "ido_serve: bad %s: '%s'\n", what, s.c_str());
        std::exit(2);
    }
    return v;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ido_serve --heap=PATH [--port=N] [--port-file=PATH]\n"
        "                 [--shards=N] [--batch=K] [--buckets=N]\n"
        "                 [--heap-bytes=N] [--reset] [--admin]\n"
        "                 [--admin-port=N] [--admin-port-file=PATH]\n"
        "                 [--replica-of=HOST:PORT]\n"
        "                 [--publish-delay-ms=N]\n"
        "--replica-of makes this process a replicated primary: client\n"
        "acks release only after the replica acknowledged the batch.\n"
        "--publish-delay-ms delays reply release after the fence (test\n"
        "injection for the replication ack-ordering proofs).\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string heap_path;
    std::string port_file;
    std::string admin_port_file;
    uint64_t port = 0;
    uint64_t admin_port = 0;
    bool admin = false;
    uint64_t shards = 4;
    uint64_t batch = 16;
    uint64_t buckets = 256;
    uint64_t heap_bytes = 64u << 20;
    bool reset = false;
    std::string replica_of;
    uint64_t publish_delay_ms = 0;

    for (int i = 1; i < argc; ++i) {
        std::string val;
        if (parse_flag(argv[i], "--heap", &val))
            heap_path = val;
        else if (parse_flag(argv[i], "--port-file", &val))
            port_file = val;
        else if (parse_flag(argv[i], "--port", &val))
            port = parse_u64_or_die(val, "--port");
        else if (parse_flag(argv[i], "--admin-port-file", &val)) {
            admin_port_file = val;
            admin = true;
        } else if (parse_flag(argv[i], "--admin-port", &val)) {
            admin_port = parse_u64_or_die(val, "--admin-port");
            admin = true;
        } else if (std::strcmp(argv[i], "--admin") == 0)
            admin = true;
        else if (parse_flag(argv[i], "--shards", &val))
            shards = parse_u64_or_die(val, "--shards");
        else if (parse_flag(argv[i], "--batch", &val))
            batch = parse_u64_or_die(val, "--batch");
        else if (parse_flag(argv[i], "--buckets", &val))
            buckets = parse_u64_or_die(val, "--buckets");
        else if (parse_flag(argv[i], "--heap-bytes", &val))
            heap_bytes = parse_u64_or_die(val, "--heap-bytes");
        else if (std::strcmp(argv[i], "--reset") == 0)
            reset = true;
        else if (parse_flag(argv[i], "--replica-of", &val))
            replica_of = val;
        else if (parse_flag(argv[i], "--publish-delay-ms", &val))
            publish_delay_ms =
                parse_u64_or_die(val, "--publish-delay-ms");
        else
            return usage();
    }
    std::string replica_host;
    uint64_t replica_port = 0;
    if (!replica_of.empty()) {
        const size_t colon = replica_of.rfind(':');
        if (colon == std::string::npos)
            return usage();
        replica_host = replica_of.substr(0, colon);
        replica_port =
            parse_u64_or_die(replica_of.substr(colon + 1), "--replica-of");
        if (replica_host.empty() || replica_port == 0 ||
            replica_port > 65535)
            return usage();
    }
    if (heap_path.empty() || port > 65535 || admin_port > 65535 ||
        shards < 1 || shards > 7 || batch < 1)
        return usage();

    // Slow-request forensics need an armed ring tracer to snapshot.
    if (stat_slow_threshold_ns() > 0 && !trace::Tracer::armed())
        trace::Tracer::arm();

    const uint64_t t_attach0 = stat_now_ns();
    nvm::PersistentHeap heap(
        {.path = heap_path, .size = heap_bytes, .reset = reset});
    nvm::RealDomain dom;
    ido::IdoRuntime rt(heap, dom, rt::RuntimeConfig{});
    apps::MemcachedMini::register_programs();
    const uint64_t attach_ns = stat_now_ns() - t_attach0;

    if (heap.recovered_from_crash()) {
        std::fprintf(stderr,
                     "ido_serve: unclean shutdown detected, running "
                     "iDO recovery\n");
        // recover() records the "crash" RecoveryTimeline (phases,
        // FASEs resumed, flush/fence deltas) and publishes the
        // recovery.* counters the crash harness asserts on.
        rt.recover();
        std::fprintf(stderr, "ido_serve: recovery complete\n");
    } else {
        // Clean attach: record a timeline for /recovery anyway so a
        // scraper always sees the latest attach, but publish no
        // recovery.* counters -- those mean "a crash was recovered".
        auto& tl = RecoveryTimeline::instance();
        tl.start("clean");
        tl.add_phase("heap-attach", attach_ns);
        tl.finish();
    }
    heap.mark_running(dom);

    net::ServerConfig cfg;
    cfg.port = static_cast<uint16_t>(port);
    cfg.shards = static_cast<uint32_t>(shards);
    cfg.batch_limit = static_cast<uint32_t>(batch);
    cfg.nbuckets = buckets;
    cfg.admin = admin;
    cfg.admin_port = static_cast<uint16_t>(admin_port);
    if (replica_port != 0) {
        cfg.replica_host = replica_host;
        cfg.replica_port = static_cast<uint16_t>(replica_port);
    }
    cfg.publish_delay_ms = static_cast<uint32_t>(publish_delay_ms);
    net::Server server(rt, cfg);

    g_server = &server;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    // The readiness handshake: the port file appears only once the
    // socket is bound, so a harness can poll for it then connect.
    // Atomic publication (tmp + fsync + rename, cluster/port_file.h):
    // the supervisor polls these files and must never observe a
    // partially written port.
    if (!port_file.empty() &&
        !cluster::write_port_file(port_file, server.port())) {
        std::fprintf(stderr, "ido_serve: cannot write %s\n",
                     port_file.c_str());
        return 1;
    }
    if (!admin_port_file.empty() &&
        !cluster::write_port_file(admin_port_file, server.admin_port())) {
        std::fprintf(stderr, "ido_serve: cannot write %s\n",
                     admin_port_file.c_str());
        return 1;
    }
    std::printf("LISTENING 127.0.0.1:%u shards=%llu batch=%llu admin=%u\n",
                server.port(), static_cast<unsigned long long>(shards),
                static_cast<unsigned long long>(batch),
                server.admin_port());
    std::fflush(stdout);

    server.run();
    g_server = nullptr;

    heap.mark_clean(dom);
    std::printf("ido_serve: clean shutdown (%llu requests served)\n",
                static_cast<unsigned long long>(server.requests_served()));
    return 0;
}
