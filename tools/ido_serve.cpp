/**
 * @file
 * ido-serve: the memcached-protocol server binary over the iDO FASE
 * runtime (src/net).  This is the process the kill -9 harness aims
 * at: a file-backed persistent heap, iDO recovery on reattach, and
 * group-persist batching of pipelined requests.
 *
 * Usage:
 *   ido_serve --heap=/path/cache.heap [--port=0] [--port-file=PATH]
 *             [--shards=4] [--batch=16] [--buckets=256]
 *             [--heap-bytes=67108864] [--reset]
 *
 * Lifecycle:
 *   1. open the heap; if the previous instance died mid-run
 *      (recovered_from_crash), run iDO recovery: reacquire locks from
 *      the persistent indirect lock holders, restore contexts, resume
 *      every interrupted FASE to completion;
 *   2. bind, write the bound port to --port-file (the harness's
 *      readiness handshake), print LISTENING, serve;
 *   3. on SIGINT/SIGTERM, drain and mark the heap clean.
 *
 * A `quit`-less client disconnect, a kill -9, or a crash anywhere in
 * between leaves the heap recoverable by the next invocation.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/memcached_mini.h"
#include "ido/ido_runtime.h"
#include "net/server.h"
#include "nvm/persist_domain.h"
#include "nvm/persistent_heap.h"

using namespace ido;

namespace {

net::Server* g_server = nullptr;

void
on_signal(int)
{
    // EventLoop::stop() only writes an eventfd: async-signal-safe.
    if (g_server)
        g_server->stop();
}

bool
parse_flag(const char* arg, const char* name, std::string* out)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

uint64_t
parse_u64_or_die(const std::string& s, const char* what)
{
    char* end = nullptr;
    const uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "ido_serve: bad %s: '%s'\n", what, s.c_str());
        std::exit(2);
    }
    return v;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ido_serve --heap=PATH [--port=N] [--port-file=PATH]\n"
        "                 [--shards=N] [--batch=K] [--buckets=N]\n"
        "                 [--heap-bytes=N] [--reset]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string heap_path;
    std::string port_file;
    uint64_t port = 0;
    uint64_t shards = 4;
    uint64_t batch = 16;
    uint64_t buckets = 256;
    uint64_t heap_bytes = 64u << 20;
    bool reset = false;

    for (int i = 1; i < argc; ++i) {
        std::string val;
        if (parse_flag(argv[i], "--heap", &val))
            heap_path = val;
        else if (parse_flag(argv[i], "--port-file", &val))
            port_file = val;
        else if (parse_flag(argv[i], "--port", &val))
            port = parse_u64_or_die(val, "--port");
        else if (parse_flag(argv[i], "--shards", &val))
            shards = parse_u64_or_die(val, "--shards");
        else if (parse_flag(argv[i], "--batch", &val))
            batch = parse_u64_or_die(val, "--batch");
        else if (parse_flag(argv[i], "--buckets", &val))
            buckets = parse_u64_or_die(val, "--buckets");
        else if (parse_flag(argv[i], "--heap-bytes", &val))
            heap_bytes = parse_u64_or_die(val, "--heap-bytes");
        else if (std::strcmp(argv[i], "--reset") == 0)
            reset = true;
        else
            return usage();
    }
    if (heap_path.empty() || port > 65535 || shards < 1 || shards > 7 ||
        batch < 1)
        return usage();

    nvm::PersistentHeap heap(
        {.path = heap_path, .size = heap_bytes, .reset = reset});
    nvm::RealDomain dom;
    ido::IdoRuntime rt(heap, dom, rt::RuntimeConfig{});
    apps::MemcachedMini::register_programs();

    if (heap.recovered_from_crash()) {
        std::fprintf(stderr,
                     "ido_serve: unclean shutdown detected, running "
                     "iDO recovery\n");
        rt.recover();
        std::fprintf(stderr, "ido_serve: recovery complete\n");
    }
    heap.mark_running(dom);

    net::ServerConfig cfg;
    cfg.port = static_cast<uint16_t>(port);
    cfg.shards = static_cast<uint32_t>(shards);
    cfg.batch_limit = static_cast<uint32_t>(batch);
    cfg.nbuckets = buckets;
    net::Server server(rt, cfg);

    g_server = &server;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    // The readiness handshake: the port file appears only once the
    // socket is bound, so a harness can poll for it then connect.
    if (!port_file.empty()) {
        std::FILE* f = std::fopen((port_file + ".tmp").c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "ido_serve: cannot write %s\n",
                         port_file.c_str());
            return 1;
        }
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
        std::rename((port_file + ".tmp").c_str(), port_file.c_str());
    }
    std::printf("LISTENING 127.0.0.1:%u shards=%llu batch=%llu\n",
                server.port(), static_cast<unsigned long long>(shards),
                static_cast<unsigned long long>(batch));
    std::fflush(stdout);

    server.run();
    g_server = nullptr;

    heap.mark_clean(dom);
    std::printf("ido_serve: clean shutdown (%llu requests served)\n",
                static_cast<unsigned long long>(server.requests_served()));
    return 0;
}
