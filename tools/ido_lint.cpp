/**
 * @file
 * ido_lint: static crash-consistency and lock-discipline analysis of
 * the IR FASE corpus.
 *
 * Runs every registered lint check (see src/compiler/lint/lint.h) over
 * the ir_library FASEs -- the same bodies the compiler pipeline and the
 * benchmarks execute -- including the corpus-wide cross-FASE race
 * check, and prints a diagnostic report.
 *
 * Usage: ido_lint [--Werror] [--quiet] [--json] [--list-checks]
 *                 [name...]
 *   --Werror       exit nonzero on warnings as well as errors
 *   --quiet        print only diagnostics and the final summary
 *   --json         machine-readable report: {"diagnostics":[...],
 *                  "errors":N,"warnings":N} (implies --quiet)
 *   --list-checks  print the check catalogue and exit
 *   name...        lint only the named FASEs (default: whole corpus)
 *
 * Exit status: 0 clean (or warnings without --Werror), 1 findings,
 * 2 usage error.
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir_library.h"
#include "compiler/lint/lint.h"

namespace {

using namespace ido::compiler;

struct CorpusEntry
{
    const char* name;
    IrFase (*make)();
};

constexpr CorpusEntry kCorpus[] = {
    {"ir.stack.push", ir_stack_push},
    {"ir.stack.pop", ir_stack_pop},
    {"ir.counter.incr", ir_counter_increment},
    {"ir.array.addloop", ir_array_add_loop},
};

void
list_checks()
{
    std::printf("registered lint checks:\n");
    for (const auto& pass : lint::LintRegistry::builtin().passes()) {
        std::printf("  %-18s %s [%s]\n", pass->id(), pass->summary(),
                    pass->scope() == lint::LintPass::Scope::kCorpus
                        ? "corpus"
                        : "function");
    }
}

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--Werror] [--quiet] [--json] "
                 "[--list-checks] [name...]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    bool werror = false;
    bool quiet = false;
    bool json = false;
    std::vector<std::string> selected;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--Werror") == 0) {
            werror = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
            quiet = true;
        } else if (std::strcmp(argv[i], "--list-checks") == 0) {
            list_checks();
            return 0;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            selected.emplace_back(argv[i]);
        }
    }

    std::vector<std::unique_ptr<lint::LintUnit>> units;
    for (const CorpusEntry& e : kCorpus) {
        if (!selected.empty()) {
            bool wanted = false;
            for (const std::string& s : selected)
                wanted = wanted || s == e.name;
            if (!wanted)
                continue;
        }
        units.push_back(
            std::make_unique<lint::LintUnit>(e.make().fn));
    }
    if (units.empty()) {
        std::fprintf(stderr, "ido_lint: no FASE matched\n");
        return 2;
    }

    std::vector<lint::LintContext> ctxs;
    ctxs.reserve(units.size());
    for (const auto& u : units)
        ctxs.push_back(u->ctx());
    std::vector<const lint::LintContext*> ctx_ptrs;
    for (const lint::LintContext& c : ctxs)
        ctx_ptrs.push_back(&c);

    if (!quiet) {
        std::printf("ido-lint: %zu FASEs, %zu checks\n", units.size(),
                    lint::LintRegistry::builtin().passes().size());
        for (const auto& u : units) {
            std::printf("  %-18s %2u blocks %2u regions "
                        "(%u antidep + %u mandatory cuts)\n",
                        u->fn.name().c_str(), u->fn.num_blocks(),
                        u->part.num_regions(),
                        u->part.antidep_cut_count(),
                        u->part.mandatory_cut_count());
        }
    }

    const std::vector<lint::Diagnostic> diags =
        lint::LintRegistry::builtin().lint_corpus(ctx_ptrs);
    const uint32_t errors =
        lint::count_at_least(diags, lint::Severity::kError);
    const uint32_t warnings =
        static_cast<uint32_t>(diags.size()) - errors;
    if (json) {
        std::printf("{\"diagnostics\":[");
        for (size_t i = 0; i < diags.size(); ++i) {
            std::printf("%s%s", i ? "," : "",
                        diags[i].render_json().c_str());
        }
        std::printf("],\"errors\":%u,\"warnings\":%u}\n", errors,
                    warnings);
    } else {
        for (const lint::Diagnostic& d : diags)
            std::printf("%s\n", d.render().c_str());
        if (!quiet || !diags.empty()) {
            std::printf("ido-lint: %u error(s), %u warning(s)\n",
                        errors, warnings);
        }
    }
    if (errors > 0)
        return 1;
    // --Werror promotes warnings, not notes: informational findings
    // must never fail CI.  (This also holds in --json mode, which
    // exits nonzero on errors like every other mode.)
    if (werror && lint::count_at_least(diags, lint::Severity::kWarning) > 0)
        return 1;
    return 0;
}
