/**
 * @file
 * ido-cluster: one-command cluster supervisor.  Spawns N ido-serve
 * nodes (plus an optional replica pair for node 0), runs the
 * consistent-hash router in-process, health-checks every child, and
 * restarts crashed nodes through iDO recovery while the router holds
 * and replays requests for the recovering slice.
 *
 * Usage:
 *   ido_cluster --serve-bin=PATH --dir=DIR [--nodes=3] [--replicate]
 *               [--router-port=0] [--router-port-file=PATH]
 *               [--state-file=PATH] [--shards=2] [--batch=16]
 *               [--heap-bytes=N] [--health-interval-ms=200]
 *
 * The state file (default DIR/cluster.state) is rewritten atomically
 * after every (re)spawn:
 *   router <port>
 *   node<i> <pid> <port> <admin_port> <heap>
 *   replica0 <pid> <port> <admin_port> <heap>
 * The CI smoke job reads pids from it to aim its kill -9 rounds, then
 * watches the same file to learn the respawned pids.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/port_file.h"
#include "cluster/router.h"
#include "cluster/supervisor.h"

using namespace ido;

namespace {

std::atomic<bool> g_stop{false};
cluster::Router* g_router = nullptr;

void
on_signal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
    if (g_router)
        g_router->stop();
}

bool
parse_flag(const char* arg, const char* name, std::string* out)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

uint64_t
parse_u64_or_die(const std::string& s, const char* what)
{
    char* end = nullptr;
    const uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "ido_cluster: bad %s: '%s'\n", what,
                     s.c_str());
        std::exit(2);
    }
    return v;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ido_cluster --serve-bin=PATH --dir=DIR [--nodes=N]\n"
        "                   [--replicate] [--router-port=N]\n"
        "                   [--router-port-file=PATH]\n"
        "                   [--state-file=PATH] [--shards=N]\n"
        "                   [--batch=K] [--heap-bytes=N]\n"
        "                   [--health-interval-ms=N]\n");
    return 2;
}

/**
 * Rewrite the state file atomically (same tmp+rename discipline as
 * the port files): a concurrent reader sees either the old complete
 * state or the new one, never a torn mix of pids.
 */
bool
write_state(const std::string& path, const cluster::NodeSupervisor& sup,
            uint16_t router_port)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "router %u\n", router_port);
    for (uint32_t i = 0; i < sup.node_count(); ++i)
        std::fprintf(f, "node%u %d %u %u %s\n", i,
                     static_cast<int>(sup.node_pid(i)), sup.node_port(i),
                     sup.node_admin_port(i), sup.node_heap(i).c_str());
    if (sup.replicated() && sup.replica_pid() > 0)
        std::fprintf(f, "replica0 %d %u 0 %s\n",
                     static_cast<int>(sup.replica_pid()),
                     sup.replica_port(), sup.replica_heap().c_str());
    std::fflush(f);
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    cluster::SupervisorConfig scfg;
    std::string router_port_file;
    std::string state_file;
    uint64_t router_port = 0;
    uint64_t health_interval_ms = 200;
    scfg.nodes = 3;

    for (int i = 1; i < argc; ++i) {
        std::string val;
        if (parse_flag(argv[i], "--serve-bin", &val))
            scfg.serve_bin = val;
        else if (parse_flag(argv[i], "--dir", &val))
            scfg.dir = val;
        else if (parse_flag(argv[i], "--nodes", &val))
            scfg.nodes =
                static_cast<uint32_t>(parse_u64_or_die(val, "--nodes"));
        else if (std::strcmp(argv[i], "--replicate") == 0)
            scfg.replicate = true;
        else if (parse_flag(argv[i], "--router-port-file", &val))
            router_port_file = val;
        else if (parse_flag(argv[i], "--router-port", &val))
            router_port = parse_u64_or_die(val, "--router-port");
        else if (parse_flag(argv[i], "--state-file", &val))
            state_file = val;
        else if (parse_flag(argv[i], "--shards", &val))
            scfg.shards =
                static_cast<uint32_t>(parse_u64_or_die(val, "--shards"));
        else if (parse_flag(argv[i], "--batch", &val))
            scfg.batch =
                static_cast<uint32_t>(parse_u64_or_die(val, "--batch"));
        else if (parse_flag(argv[i], "--heap-bytes", &val))
            scfg.heap_bytes = parse_u64_or_die(val, "--heap-bytes");
        else if (parse_flag(argv[i], "--health-interval-ms", &val))
            health_interval_ms =
                parse_u64_or_die(val, "--health-interval-ms");
        else
            return usage();
    }
    if (scfg.serve_bin.empty() || scfg.dir.empty() || scfg.nodes < 1 ||
        router_port > 65535)
        return usage();
    if (state_file.empty())
        state_file = scfg.dir + "/cluster.state";

    cluster::NodeSupervisor sup(scfg);
    if (!sup.start_all()) {
        std::fprintf(stderr, "ido_cluster: failed to start nodes\n");
        return 1;
    }

    cluster::RouterConfig rcfg;
    rcfg.nodes = sup.node_addrs();
    rcfg.port = static_cast<uint16_t>(router_port);
    cluster::Router router(rcfg);

    g_router = &router;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    if (!router_port_file.empty() &&
        !cluster::write_port_file(router_port_file, router.port())) {
        std::fprintf(stderr, "ido_cluster: cannot write %s\n",
                     router_port_file.c_str());
        return 1;
    }
    if (!write_state(state_file, sup, router.port())) {
        std::fprintf(stderr, "ido_cluster: cannot write %s\n",
                     state_file.c_str());
        return 1;
    }
    std::printf("CLUSTER 127.0.0.1:%u nodes=%u replicate=%d\n",
                router.port(), sup.node_count(),
                sup.replicated() ? 1 : 0);
    std::fflush(stdout);

    // The router owns a worker thread; the main thread is the health
    // loop.  A crashed node is respawned on its pinned port (iDO
    // recovery runs inside ido_serve before it binds) while the router
    // holds that slice's requests and replays them on reconnect.
    std::thread router_thread([&router] { router.run(); });
    while (!g_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(health_interval_ms));
        bool changed = false;
        for (uint32_t i = 0; i < sup.node_count(); ++i) {
            if (sup.node_alive(i))
                continue;
            std::fprintf(stderr,
                         "ido_cluster: node%u died, restarting\n", i);
            if (sup.restart_node(i)) {
                changed = true;
                std::fprintf(stderr, "ido_cluster: node%u back (pid %d)\n",
                             i, static_cast<int>(sup.node_pid(i)));
            }
        }
        if (sup.replicated() && !sup.replica_alive()) {
            std::fprintf(stderr,
                         "ido_cluster: replica died, restarting\n");
            if (sup.restart_replica())
                changed = true;
        }
        if (changed)
            write_state(state_file, sup, router.port());
    }
    router.stop();
    router_thread.join();
    g_router = nullptr;
    // ~NodeSupervisor SIGKILLs the children; their heaps recover on
    // the next start, which is the contract this whole tool exists to
    // demonstrate.
    return 0;
}
