/**
 * @file
 * ido-router: standalone consistent-hash proxy over N ido-serve nodes
 * (cluster/router.h).  Clients speak plain memcached to this process
 * and never learn the topology.
 *
 * Usage:
 *   ido_router --node=IPV4:PORT [--node=IPV4:PORT ...]
 *              [--port=0] [--port-file=PATH]
 *              [--hold-max=4096] [--hold-deadline-ms=10000]
 *
 * Node order matters: node i on the command line is ring node id i,
 * and every router/ClusterClient sharing a cluster must list the
 * nodes in the same order (and run under the same IDO_SEED) to agree
 * on placement.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/port_file.h"
#include "cluster/router.h"

using namespace ido;

namespace {

cluster::Router* g_router = nullptr;

void
on_signal(int)
{
    if (g_router)
        g_router->stop();
}

bool
parse_flag(const char* arg, const char* name, std::string* out)
{
    const size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

uint64_t
parse_u64_or_die(const std::string& s, const char* what)
{
    char* end = nullptr;
    const uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "ido_router: bad %s: '%s'\n", what,
                     s.c_str());
        std::exit(2);
    }
    return v;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ido_router --node=IPV4:PORT [--node=IPV4:PORT ...]\n"
        "                  [--port=N] [--port-file=PATH]\n"
        "                  [--hold-max=N] [--hold-deadline-ms=N]\n"
        "Node addresses are dotted-quad IPv4 (no DNS).  Node order\n"
        "defines ring node ids; every participant must use the same\n"
        "order and IDO_SEED.\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    cluster::RouterConfig cfg;
    std::string port_file;
    uint64_t port = 0;

    for (int i = 1; i < argc; ++i) {
        std::string val;
        if (parse_flag(argv[i], "--node", &val)) {
            const size_t colon = val.rfind(':');
            if (colon == std::string::npos)
                return usage();
            const uint64_t p =
                parse_u64_or_die(val.substr(colon + 1), "--node port");
            if (p == 0 || p > 65535)
                return usage();
            cfg.nodes.push_back({val.substr(0, colon),
                                 static_cast<uint16_t>(p)});
        } else if (parse_flag(argv[i], "--port-file", &val))
            port_file = val;
        else if (parse_flag(argv[i], "--port", &val))
            port = parse_u64_or_die(val, "--port");
        else if (parse_flag(argv[i], "--hold-max", &val))
            cfg.hold_max = parse_u64_or_die(val, "--hold-max");
        else if (parse_flag(argv[i], "--hold-deadline-ms", &val))
            cfg.hold_deadline_ms = static_cast<uint32_t>(
                parse_u64_or_die(val, "--hold-deadline-ms"));
        else
            return usage();
    }
    if (cfg.nodes.empty() || port > 65535)
        return usage();
    cfg.port = static_cast<uint16_t>(port);

    cluster::Router router(cfg);
    g_router = &router;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    if (!port_file.empty() &&
        !cluster::write_port_file(port_file, router.port())) {
        std::fprintf(stderr, "ido_router: cannot write %s\n",
                     port_file.c_str());
        return 1;
    }
    std::printf("ROUTING 127.0.0.1:%u nodes=%zu\n", router.port(),
                cfg.nodes.size());
    std::fflush(stdout);

    router.run();
    g_router = nullptr;
    return 0;
}
