/**
 * @file
 * ido_verify: the persist-ordering verifier and flush-elision planner
 * over the IR FASE corpus.
 *
 * For every FASE, runs the full ido-verify pipeline: compute the
 * flush-elision PersistPlan (compiler/persistency/flush_elision.h),
 * then independently re-prove every claim it makes against the
 * cache-line persist-state dataflow (persist_verify.h).  The report
 * lists each redundancy proof -- which store's boundary write-back is
 * dropped, which witness covers its line, which allocation sites get
 * InCLL-style line alignment, which boundaries may defer their pc
 * fence -- and every diagnostic the verifier raises (all diagnostics
 * are proved crash-consistency bugs, reported with their
 * crash-frontier counterexample trace).
 *
 * Usage: ido_verify [--quiet] [--json] [name...]
 *   --quiet   print only diagnostics and the final summary
 *   --json    machine-readable report (implies --quiet):
 *             {"fases":[{"name":...,"regions":N,
 *               "elisions":[{"kind":...,"store":{...},
 *                            "witness":{...}}],
 *               "aligned_sites":[{...}],"deferrable":[N...],
 *               "diagnostics":[...]}],"errors":N}
 *   name...   verify only the named FASEs (default: whole corpus)
 *
 * Exit status: 0 when every plan verifies, 1 on any finding, 2 usage.
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir_library.h"
#include "compiler/lint/lint.h"
#include "compiler/persistency/flush_elision.h"
#include "compiler/persistency/persist_verify.h"

namespace {

using namespace ido::compiler;
using persistency::ElisionProof;
using persistency::PersistPlan;

struct CorpusEntry
{
    const char* name;
    IrFase (*make)();
};

constexpr CorpusEntry kCorpus[] = {
    {"ir.stack.push", ir_stack_push},
    {"ir.stack.pop", ir_stack_pop},
    {"ir.counter.incr", ir_counter_increment},
    {"ir.array.addloop", ir_array_add_loop},
};

int
usage(const char* argv0)
{
    std::fprintf(stderr, "usage: %s [--quiet] [--json] [name...]\n",
                 argv0);
    return 2;
}

void
print_pos_json(InstrRef pos)
{
    std::printf("{\"block\":%u,\"instr\":%u}", pos.block, pos.index);
}

} // namespace

int
main(int argc, char** argv)
{
    bool quiet = false;
    bool json = false;
    std::vector<std::string> selected;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
            quiet = true;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            selected.emplace_back(argv[i]);
        }
    }

    std::vector<std::unique_ptr<lint::LintUnit>> units;
    for (const CorpusEntry& e : kCorpus) {
        if (!selected.empty()) {
            bool wanted = false;
            for (const std::string& s : selected)
                wanted = wanted || s == e.name;
            if (!wanted)
                continue;
        }
        units.push_back(std::make_unique<lint::LintUnit>(e.make().fn));
    }
    if (units.empty()) {
        std::fprintf(stderr, "ido_verify: no FASE matched\n");
        return 2;
    }

    if (!quiet)
        std::printf("ido-verify: %zu FASEs\n", units.size());
    if (json)
        std::printf("{\"fases\":[");

    uint32_t total_errors = 0;
    size_t total_elisions = 0;
    for (size_t ui = 0; ui < units.size(); ++ui) {
        const lint::LintUnit& u = *units[ui];
        const PersistPlan plan = persistency::compute_persist_plan(
            u.fn, u.cfg, u.aa, u.part, u.info);
        const std::vector<lint::Diagnostic> diags =
            persistency::verify_persist_plan(u.fn, u.cfg, u.aa, u.part,
                                             u.info, plan);
        total_errors +=
            lint::count_at_least(diags, lint::Severity::kError);
        total_elisions += plan.elisions.size();

        if (json) {
            std::printf("%s{\"name\":\"%s\",\"regions\":%u,"
                        "\"elisions\":[",
                        ui ? "," : "", u.fn.name().c_str(),
                        u.part.num_regions());
            for (size_t i = 0; i < plan.elisions.size(); ++i) {
                const ElisionProof& e = plan.elisions[i];
                std::printf("%s{\"kind\":\"%s\",\"store\":",
                            i ? "," : "", proof_kind_name(e.kind));
                print_pos_json(e.store);
                std::printf(",\"witness\":");
                print_pos_json(e.witness);
                std::printf("}");
            }
            std::printf("],\"aligned_sites\":[");
            for (size_t i = 0; i < plan.aligned_alloc_sites.size();
                 ++i) {
                if (i)
                    std::printf(",");
                print_pos_json(plan.aligned_alloc_sites[i]);
            }
            std::printf("],\"deferrable\":[");
            for (size_t i = 0; i < plan.deferrable_boundaries.size();
                 ++i) {
                std::printf("%s%u", i ? "," : "",
                            plan.deferrable_boundaries[i]);
            }
            std::printf("],\"diagnostics\":[");
            for (size_t i = 0; i < diags.size(); ++i) {
                std::printf("%s%s", i ? "," : "",
                            diags[i].render_json().c_str());
            }
            std::printf("]}");
            continue;
        }

        if (!quiet) {
            std::printf("  %-18s %2u regions  %zu elision(s)  "
                        "%zu aligned site(s)  %zu deferrable "
                        "boundarie(s)\n",
                        u.fn.name().c_str(), u.part.num_regions(),
                        plan.elisions.size(),
                        plan.aligned_alloc_sites.size(),
                        plan.deferrable_boundaries.size());
            for (const ElisionProof& e : plan.elisions) {
                std::printf("    proof: store bb%u:%u covered by "
                            "bb%u:%u (%s)\n",
                            e.store.block, e.store.index,
                            e.witness.block, e.witness.index,
                            proof_kind_name(e.kind));
            }
            for (const InstrRef& s : plan.aligned_alloc_sites) {
                std::printf("    place: line-align allocation at "
                            "bb%u:%u\n",
                            s.block, s.index);
            }
            for (const uint32_t r : plan.deferrable_boundaries) {
                std::printf("    defer: pc fence entering region %u "
                            "(store-free tail)\n",
                            r);
            }
        }
        for (const lint::Diagnostic& d : diags)
            std::printf("%s\n", d.render().c_str());
    }

    if (json) {
        std::printf("],\"errors\":%u}\n", total_errors);
    } else if (!quiet || total_errors > 0) {
        std::printf("ido-verify: %zu elision(s) proved, %u error(s)\n",
                    total_elisions, total_errors);
    }
    return total_errors > 0 ? 1 : 0;
}
